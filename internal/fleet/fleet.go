// Package fleet is the resilience layer between clients and a pool of
// supervised unikernel VMs: a deterministic, virtual-time front-end that
// load-balances request traffic across backends whose ground truth is a
// supervised service timeline (internal/vmm). It implements the
// production playbook the paper's deployment story needs — heartbeat
// health checks, per-backend circuit breakers, bounded retries under a
// fleet-wide retry budget, admission control with explicit load-shed
// accounting, and rolling kernel upgrades with surge capacity — all on a
// simclock.Clock with faults injected through internal/faults, so a
// fixed seed replays bit-for-bit.
package fleet

import (
	"container/heap"
	"fmt"
	"strconv"

	"lupine/internal/faults"
	"lupine/internal/metrics"
	"lupine/internal/simclock"
	"lupine/internal/telemetry"
)

// Fleet-owned fault-injection sites: the front-end's own wire can fail.
const (
	// SiteProbeDrop loses a health probe in flight; the checker counts a
	// false-negative failure against the backend.
	SiteProbeDrop = "fleet/probe-drop"
	// SiteDispatchDrop loses a dispatched request between the balancer
	// and an otherwise healthy backend; the sender times out and retries.
	SiteDispatchDrop = "fleet/dispatch-drop"
)

func init() {
	faults.RegisterSite(SiteProbeDrop, "fleet",
		"a health probe is lost in flight; the backend is charged a probe failure")
	faults.RegisterSite(SiteDispatchDrop, "fleet",
		"a dispatched request is lost on the wire; the client times out and retries")
}

// Config tunes the front-end. All durations are virtual.
type Config struct {
	// Traffic: Requests arrivals starting at TrafficStart, Interarrival
	// apart, each jittered by a seeded draw in [0, ArrivalJitter).
	// TrafficStart models a pool that finishes provisioning before the
	// balancer advertises it: without it, cold-boot latency would be
	// double-counted as unavailability.
	Requests      int
	TrafficStart  simclock.Time
	Interarrival  simclock.Duration
	ArrivalJitter simclock.Duration

	// Service cost per request on a live backend, plus seeded jitter.
	ServiceTime   simclock.Duration
	ServiceJitter simclock.Duration

	// Capacity and admission control: each backend serves at most
	// BackendSlots requests concurrently; beyond that, requests wait in a
	// bounded pending queue of QueueDepth and are shed once it is full.
	BackendSlots int
	QueueDepth   int

	// Failure detection and retry policy. A request hitting a dead
	// backend is refused after FailFast; a request lost on the wire costs
	// a DropTimeout. Retries back off exponentially (RetryBackoff,
	// RetryFactor) bounded by the per-request Deadline and by the
	// fleet-wide retry budget: a token bucket holding at most RetryBurst
	// tokens, refilled by RetryBudget per completed request, so a storm
	// sheds load instead of amplifying it.
	FailFast     simclock.Duration
	DropTimeout  simclock.Duration
	Deadline     simclock.Duration
	MaxRetries   int
	RetryBackoff simclock.Duration
	RetryFactor  int
	RetryBudget  float64
	RetryBurst   float64

	// Heartbeat health checking: every ProbeInterval each in-rotation
	// backend is probed; ProbeFailAfter consecutive misses mark it down,
	// ProbeRiseAfter consecutive successes bring it back.
	ProbeInterval  simclock.Duration
	ProbeFailAfter int
	ProbeRiseAfter int

	Breaker BreakerConfig

	// Seed drives arrival and service jitter (independent streams).
	Seed uint64
}

// DefaultConfig returns the tuning the fleetchaos experiment uses: a
// pool comfortably over-provisioned when healthy, so every unavailability
// the table reports is storm-caused, not capacity-caused.
func DefaultConfig() Config {
	const us = simclock.Microsecond
	const ms = simclock.Millisecond
	return Config{
		Requests:      2000,
		Interarrival:  50 * us,
		ArrivalJitter: 20 * us,
		ServiceTime:   250 * us,
		ServiceJitter: 100 * us,

		BackendSlots: 4,
		QueueDepth:   32,

		FailFast:     200 * us,
		DropTimeout:  1 * ms,
		Deadline:     10 * ms,
		MaxRetries:   3,
		RetryBackoff: 500 * us,
		RetryFactor:  2,
		RetryBudget:  0.1,
		RetryBurst:   20,

		ProbeInterval:  1 * ms,
		ProbeFailAfter: 2,
		ProbeRiseAfter: 2,

		Breaker: BreakerConfig{FailThreshold: 5, OpenFor: 5 * ms, HalfOpenSuccesses: 2},
		Seed:    42,
	}
}

// Result is what one fleet run reports.
type Result struct {
	Total        int // requests that arrived
	OK           int // served within deadline
	Shed         int // refused at admission: pending queue full
	Failed       int // dispatched but never served
	DeadlineMiss int // subset of Failed+queue drops that ran out of deadline
	Retries      int // re-dispatches performed
	BudgetDenied int // retries refused by the fleet-wide budget
	BreakerOpens int // open transitions across all breakers
	Restarts     int // supervisor restarts summed over initial backends
	MinActive    int // fewest structurally active backends at any instant
	End          simclock.Time

	// Autoscaler accounting (zero unless the fleet was built with
	// NewAutoscaled).
	ScaleUps   int           // scale-up decisions taken
	ScaleDowns int           // scale-down drains started
	Restores   int           // backends launched via snapshot restore
	ColdBoots  int           // backends launched via cold boot (fallbacks included)
	PeakActive int           // most structurally active backends at any instant
	FullAt     simclock.Time // first instant the pool reached Max (-1 = never)

	// Memory-pressure accounting (zero unless a MemoryPlane was
	// attached). MemSheds counts arrivals refused by the pressure
	// ladder's shed rung; they are also counted in Shed.
	MemSheds int
	Mem      MemStats

	// Latencies holds arrival-to-completion times of served requests, in
	// arrival order.
	Latencies []simclock.Duration
}

// Availability is the fraction of offered requests that were served.
func (r *Result) Availability() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.OK) / float64(r.Total)
}

// ShedRate is the fraction of offered requests refused at admission.
func (r *Result) ShedRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Total)
}

// Percentile returns the p-th percentile served latency.
func (r *Result) Percentile(p float64) simclock.Duration {
	ns := make([]int64, len(r.Latencies))
	for i, d := range r.Latencies {
		ns[i] = int64(d)
	}
	return simclock.Duration(metrics.Percentile(ns, p))
}

// request is one client request's journey through the front-end.
type request struct {
	id       int
	arrival  simclock.Time
	attempts int // dispatches so far
}

// event is one scheduled state change; seq breaks time ties in schedule
// order, which is what makes the run replayable.
type event struct {
	at  simclock.Time
	seq int
	fn  func(now simclock.Time)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// queued is a pending request with its enqueue instant.
type queued struct {
	r  *request
	at simclock.Time
}

// Fleet is the running front-end. Construct with New, drive with Run.
type Fleet struct {
	cfg      Config
	clk      *simclock.Clock
	backends []*Backend
	inj      *faults.Injector // fleet-plane faults; nil = clean wire

	arrivalRng *faults.Stream
	serviceRng *faults.Stream

	events eventQueue
	seq    int

	queue       []queued
	retryTokens float64
	rrNext      int

	plan     *UpgradePlan
	upgraded bool // plan finished (or absent)

	scaler       *AutoscalePolicy
	scaleSeq     int // launches requested so far
	scalePending int // launches provisioning, not yet admitted
	upReadyAt    simclock.Time
	downReadyAt  simclock.Time

	mem      MemoryPlane // nil: no memory-pressure plane attached
	memEvery simclock.Duration

	// Telemetry (attached via Observe; nil = disabled, zero cost).
	tr            *telemetry.Tracer
	trTrack       string
	mOK           *telemetry.Counter
	mShed         *telemetry.Counter
	mFailed       *telemetry.Counter
	mRetries      *telemetry.Counter
	mBreakerOpens *telemetry.Counter
	hLatency      *telemetry.Histogram

	resolved int
	res      Result
}

// New assembles a fleet over the initial backends. plan may be nil (no
// rolling upgrade) and inj may be nil (no fleet-plane faults).
func New(cfg Config, backends []*Backend, plan *UpgradePlan, inj *faults.Injector) *Fleet {
	return NewAutoscaled(cfg, backends, nil, plan, inj)
}

// NewAutoscaled is New plus a demand-driven autoscaler: the pool grows
// and shrinks between the policy's Min and Max, provisioning new
// backends through the policy (snapshot restore or cold boot). scaler
// may be nil (fixed pool).
func NewAutoscaled(cfg Config, backends []*Backend, scaler *AutoscalePolicy, plan *UpgradePlan, inj *faults.Injector) *Fleet {
	f := &Fleet{
		cfg:         cfg,
		clk:         simclock.New(),
		inj:         inj,
		arrivalRng:  faults.NewStream(cfg.Seed),
		serviceRng:  faults.NewStream(cfg.Seed ^ 0xA5A5A5A5A5A5A5A5),
		retryTokens: cfg.RetryBurst,
		plan:        plan,
		upgraded:    plan == nil,
		scaler:      scaler,
	}
	f.res.FullAt = -1
	for _, b := range backends {
		f.admit(b, 0)
		f.res.Restarts += b.Timeline.Stats.Restarts
	}
	f.res.MinActive = f.activeCount()
	f.notePool(0)
	return f
}

// Run plays the whole workload and returns the result. Deterministic:
// the only inputs are the config, the backend timelines, the upgrade
// plan, and the injector's plan and seed.
func (f *Fleet) Run() Result {
	// Arrivals, jittered from the seeded stream.
	at := f.cfg.TrafficStart
	for i := 0; i < f.cfg.Requests; i++ {
		r := &request{id: i, arrival: at.Add(f.jitter(f.arrivalRng, f.cfg.ArrivalJitter))}
		f.schedule(r.arrival, func(now simclock.Time) { f.admitRequest(r, now) })
		at = at.Add(f.cfg.Interarrival)
	}
	f.res.Total = f.cfg.Requests
	f.schedule(simclock.Time(f.cfg.ProbeInterval), f.probeTick)
	if f.plan != nil {
		f.schedule(f.plan.Start, func(now simclock.Time) { f.startUpgrade(now) })
	}
	if f.scaler != nil {
		f.schedule(simclock.Time(f.scaler.Evaluate), f.autoscaleTick)
	}
	if f.mem != nil {
		f.schedule(simclock.Time(f.memEvery), f.memTick)
	}
	for f.events.Len() > 0 {
		e := heap.Pop(&f.events).(*event)
		f.clk.AdvanceTo(e.at)
		e.fn(e.at)
	}
	f.res.End = f.clk.Now()
	if f.mem != nil {
		f.res.Mem = f.mem.Finish(f.res.End)
	}
	return f.res
}

func (f *Fleet) schedule(at simclock.Time, fn func(now simclock.Time)) {
	if at < f.clk.Now() {
		at = f.clk.Now()
	}
	f.seq++
	heap.Push(&f.events, &event{at: at, seq: f.seq, fn: fn})
}

func (f *Fleet) jitter(rng *faults.Stream, span simclock.Duration) simclock.Duration {
	if span <= 0 {
		return 0
	}
	return simclock.Duration(rng.Intn(int(span)))
}

// admit places a backend in rotation at time now, attaching a fresh
// breaker and an optimistic heartbeat verdict.
func (f *Fleet) admit(b *Backend, now simclock.Time) {
	b.start = now
	b.admitted = true
	b.healthy = true
	b.breaker = NewBreaker(f.cfg.Breaker)
	f.backends = append(f.backends, b)
	f.observeBackend(b, now)
	f.pump(now)
}

func (f *Fleet) activeCount() int {
	n := 0
	for _, b := range f.backends {
		if b.active() {
			n++
		}
	}
	return n
}

func (f *Fleet) noteActive() {
	if n := f.activeCount(); n < f.res.MinActive {
		f.res.MinActive = n
	}
}

// pick returns the next dispatchable backend with a free slot,
// round-robin so load spreads and the choice stays deterministic.
func (f *Fleet) pick(now simclock.Time) *Backend {
	n := len(f.backends)
	for i := 0; i < n; i++ {
		b := f.backends[(f.rrNext+i)%n]
		if b.dispatchable(now) && b.inflight < f.cfg.BackendSlots {
			f.rrNext = (f.rrNext + i + 1) % n
			return b
		}
	}
	return nil
}

// admitRequest is the admission-control gate: refuse outright while the
// memory-pressure ladder sheds, dispatch if a backend has capacity,
// queue while the bounded queue has room, shed otherwise.
func (f *Fleet) admitRequest(r *request, now simclock.Time) {
	if f.mem != nil && r.attempts == 0 && f.mem.ShedAdmission(now) {
		f.res.Shed++
		f.res.MemSheds++
		f.resolved++
		f.mShed.Inc()
		if f.tr != nil {
			f.tr.Instant("fleet", f.trTrack, "shed", now, telemetry.A("reason", "mem-pressure"))
		}
		return
	}
	if b := f.pick(now); b != nil {
		f.send(r, b, now)
		return
	}
	if len(f.queue) < f.cfg.QueueDepth {
		f.queue = append(f.queue, queued{r: r, at: now})
		return
	}
	f.res.Shed++
	f.resolved++
	f.mShed.Inc()
	if f.tr != nil {
		f.tr.Instant("fleet", f.trTrack, "shed", now, telemetry.A("reason", "queue-full"))
	}
}

// send dispatches r to b and schedules the outcome: ground truth decides
// between completion, fast refusal (backend down), and wire loss.
func (f *Fleet) send(r *request, b *Backend, now simclock.Time) {
	r.attempts++
	b.inflight++
	svc := f.cfg.ServiceTime + f.jitter(f.serviceRng, f.cfg.ServiceJitter)
	done := now.Add(svc)
	dropped := false
	if d := f.inj.Hit(SiteDispatchDrop, now); d.Fire {
		dropped = true
	}
	if !dropped && b.aliveAt(now) && b.aliveAt(done) {
		f.schedule(done, func(t simclock.Time) {
			b.inflight--
			b.served++
			b.breaker.Success(t)
			f.res.OK++
			f.resolved++
			// Served traffic earns retry budget back, capped at the burst.
			f.retryTokens += f.cfg.RetryBudget
			if f.retryTokens > f.cfg.RetryBurst {
				f.retryTokens = f.cfg.RetryBurst
			}
			lat := t.Sub(r.arrival)
			f.res.Latencies = append(f.res.Latencies, lat)
			f.mOK.Inc()
			f.hLatency.Observe(lat)
			if f.tr != nil {
				f.tr.Span("fleet", f.btrack(b), "dispatch", now, t,
					telemetry.A("req", strconv.Itoa(r.id)))
			}
			f.maybeDrained(b, t)
			f.pump(t)
		})
		return
	}
	// Failure detection: a dead backend refuses fast; a lost request
	// costs the client its timeout.
	wait := f.cfg.FailFast
	if dropped {
		wait = f.cfg.DropTimeout
	}
	f.schedule(now.Add(wait), func(t simclock.Time) {
		b.inflight--
		b.failed++
		if f.tr != nil {
			reason := "dead-backend"
			if dropped {
				reason = "wire-drop"
			}
			f.tr.Span("fleet", f.btrack(b), "dispatch-fail", now, t,
				telemetry.A("req", strconv.Itoa(r.id)),
				telemetry.A("reason", reason))
		}
		b.breaker.Failure(t)
		if b.breaker.State() == BreakerOpen {
			f.res.BreakerOpens++
			f.schedule(b.breaker.ReopenAt(), f.pump)
		}
		f.maybeDrained(b, t)
		f.retry(r, t)
		f.pump(t)
	})
}

// retry re-dispatches a failed request under the retry policy: bounded
// attempts, exponential backoff under the per-request deadline, and the
// fleet-wide token budget.
func (f *Fleet) retry(r *request, now simclock.Time) {
	if r.attempts > f.cfg.MaxRetries {
		f.res.Failed++
		f.resolved++
		f.mFailed.Inc()
		return
	}
	backoff := f.cfg.RetryBackoff
	for i := 1; i < r.attempts; i++ {
		if f.cfg.RetryFactor > 1 {
			backoff *= simclock.Duration(f.cfg.RetryFactor)
		}
	}
	retryAt := now.Add(backoff)
	if retryAt.Sub(r.arrival) > f.cfg.Deadline {
		f.res.Failed++
		f.res.DeadlineMiss++
		f.resolved++
		f.mFailed.Inc()
		if f.tr != nil {
			f.tr.Instant("fleet", f.trTrack, "deadline-miss", now,
				telemetry.A("req", strconv.Itoa(r.id)))
		}
		return
	}
	if f.retryTokens < 1 {
		f.res.Failed++
		f.res.BudgetDenied++
		f.resolved++
		f.mFailed.Inc()
		if f.tr != nil {
			f.tr.Instant("fleet", f.trTrack, "budget-denied", now,
				telemetry.A("req", strconv.Itoa(r.id)))
		}
		return
	}
	f.retryTokens--
	f.res.Retries++
	f.mRetries.Inc()
	if f.tr != nil {
		f.tr.Span("fleet", f.trTrack, "retry-backoff", now, retryAt,
			telemetry.A("req", strconv.Itoa(r.id)),
			telemetry.A("attempt", strconv.Itoa(r.attempts)))
	}
	f.schedule(retryAt, func(t simclock.Time) { f.admitRequest(r, t) })
}

// pump drains the pending queue into free capacity, dropping requests
// whose deadline passed while they waited.
func (f *Fleet) pump(now simclock.Time) {
	for len(f.queue) > 0 {
		head := f.queue[0]
		if now.Sub(head.r.arrival) > f.cfg.Deadline {
			f.queue = f.queue[1:]
			f.res.Failed++
			f.res.DeadlineMiss++
			f.resolved++
			continue
		}
		b := f.pick(now)
		if b == nil {
			return
		}
		f.queue = f.queue[1:]
		f.send(head.r, b, now)
	}
}

// probeTick is the heartbeat: probe every in-rotation backend against
// ground truth (modulo injected probe drops), update the health verdict
// and feed the breaker, then reschedule itself while work remains.
func (f *Fleet) probeTick(now simclock.Time) {
	for _, b := range f.backends {
		if !b.admitted || b.retired {
			continue
		}
		up := b.aliveAt(now)
		if d := f.inj.Hit(SiteProbeDrop, now); d.Fire {
			up = false // the probe never came back
		}
		if up {
			b.probeOKs++
			b.probeFails = 0
			if !b.healthy && b.probeOKs >= f.cfg.ProbeRiseAfter {
				b.healthy = true
				if f.tr != nil {
					f.tr.Instant("fleet", f.btrack(b), "health:up", now)
				}
			}
			b.breaker.ProbeSuccess(now)
		} else {
			b.probeFails++
			b.probeOKs = 0
			if b.healthy && b.probeFails >= f.cfg.ProbeFailAfter {
				b.healthy = false
				if f.tr != nil {
					f.tr.Instant("fleet", f.btrack(b), "health:down", now)
				}
			}
			b.breaker.ProbeFailure(now)
			if b.breaker.State() == BreakerOpen {
				f.schedule(b.breaker.ReopenAt(), f.pump)
			}
		}
	}
	f.pump(now)
	if f.resolved < f.cfg.Requests || !f.upgraded {
		f.schedule(now.Add(f.cfg.ProbeInterval), f.probeTick)
	}
}

// Backends exposes the pool (initial + surge + replacements) for tables
// and tests.
func (f *Fleet) Backends() []*Backend { return f.backends }

// String summarizes the last result (Fleet is not a Stringer for tables;
// experiments render their own).
func (f *Fleet) String() string {
	return fmt.Sprintf("fleet(%d backends, %d/%d served)", len(f.backends), f.res.OK, f.res.Total)
}
