// Package fleet is the resilience layer between clients and a pool of
// supervised unikernel VMs: a deterministic, virtual-time front-end that
// load-balances request traffic across backends whose ground truth is a
// supervised service timeline (internal/vmm). Since the fabric refactor
// every byte between the balancer and a backend crosses
// internal/fabric's virtual wire: dispatches are TCP-like connections
// with SYN backlogs and retransmission, health probes are heartbeat
// datagrams that a partition can eat, and the shed path is the
// backend's own listener backlog overflowing — so breakers, retries and
// shed accounting are measured against a network that can actually lose
// a packet. All of it runs on one virtual-time event heap with faults
// injected through internal/faults, so a fixed seed replays bit-for-bit.
package fleet

import (
	"container/heap"
	"errors"
	"fmt"
	"strconv"

	"lupine/internal/fabric"
	"lupine/internal/faults"
	"lupine/internal/metrics"
	"lupine/internal/simclock"
	"lupine/internal/telemetry"
)

// Fleet-owned fault-injection sites: the front-end's own wire can fail.
// Both are wired into the fabric as extra per-segment drop sites, so
// plans written against them now lose real segments on the virtual wire.
const (
	// SiteProbeDrop loses a health-probe datagram (or its reply) in
	// flight; the checker's timeout counts a false-negative failure
	// against the backend.
	SiteProbeDrop = "fleet/probe-drop"
	// SiteDispatchDrop loses a request or response payload segment
	// between the balancer and an otherwise healthy backend; the sender
	// retransmits and may time the connection out.
	SiteDispatchDrop = "fleet/dispatch-drop"
)

func init() {
	faults.RegisterSite(SiteProbeDrop, "fleet",
		"a health probe datagram is lost on the fabric; the backend is charged a probe failure")
	faults.RegisterSite(SiteDispatchDrop, "fleet",
		"a dispatched payload segment is lost on the fabric; the sender retransmits, then times out")
}

// NetConfig tunes the virtual wire the fleet runs on. Zero values take
// fabric defaults where the fabric has them.
type NetConfig struct {
	CIDR        string            // address block for the pool (default fabric's)
	LinkLatency simclock.Duration // one-way per-NIC propagation
	Bandwidth   int64             // per-NIC egress bytes per virtual second

	RequestBytes  int // payload size of a dispatched request
	ResponseBytes int // payload size of a response

	RTO            simclock.Duration // initial retransmission timeout
	RTOJitter      simclock.Duration // seeded jitter added per backoff step
	RTOFactor      int               // exponential backoff factor
	MaxRetransmits int               // data retransmissions before ErrTimeout
	ConnectRetries int               // SYN retransmissions before ErrTimeout

	ProbeTimeout    simclock.Duration // heartbeat verdict deadline
	ResponseTimeout simclock.Duration // request-to-response deadline on a connection
}

// Config tunes the front-end. All durations are virtual.
type Config struct {
	// Traffic: Requests arrivals starting at TrafficStart, Interarrival
	// apart, each jittered by a seeded draw in [0, ArrivalJitter).
	// TrafficStart models a pool that finishes provisioning before the
	// balancer advertises it: without it, cold-boot latency would be
	// double-counted as unavailability.
	Requests      int
	TrafficStart  simclock.Time
	Interarrival  simclock.Duration
	ArrivalJitter simclock.Duration

	// Service cost per request on a live backend, plus seeded jitter.
	ServiceTime   simclock.Duration
	ServiceJitter simclock.Duration

	// Capacity and admission control: each backend serves at most
	// BackendSlots requests concurrently; beyond that, connections wait
	// in its listener's SYN backlog of depth QueueDepth (clamped by the
	// fabric's listen(2) rules) and overflow is refused at the wire — the
	// shed path IS the backlog overflowing.
	BackendSlots int
	QueueDepth   int

	// Policy selects how the balancer spreads connections:
	// PolicyRR (default) round-robin, PolicyLeast least-loaded,
	// PolicyHash consistent-hash connection affinity over HashClients
	// synthetic client keys.
	Policy      string
	HashClients int

	// Retry policy for failed dispatches. Retries back off exponentially
	// (RetryBackoff, RetryFactor) bounded by the per-request Deadline and
	// by the fleet-wide retry budget: a token bucket holding at most
	// RetryBurst tokens, refilled by RetryBudget per completed request,
	// so a storm sheds load instead of amplifying it.
	Deadline     simclock.Duration
	MaxRetries   int
	RetryBackoff simclock.Duration
	RetryFactor  int
	RetryBudget  float64
	RetryBurst   float64

	// Heartbeat health checking: every ProbeInterval each in-rotation
	// backend is probed over the fabric; ProbeFailAfter consecutive
	// misses mark it down, ProbeRiseAfter consecutive successes bring it
	// back.
	ProbeInterval  simclock.Duration
	ProbeFailAfter int
	ProbeRiseAfter int

	Breaker BreakerConfig

	// Net tunes the fabric under the pool.
	Net NetConfig

	// Seed drives arrival and service jitter and the fabric's
	// retransmission jitter (independent streams).
	Seed uint64
}

// Load-balancing policies.
const (
	PolicyRR    = "rr"    // round-robin (the default)
	PolicyLeast = "least" // fewest outstanding connections
	PolicyHash  = "hash"  // consistent-hash connection affinity
)

// DefaultConfig returns the tuning the fleetchaos experiment uses: a
// pool comfortably over-provisioned when healthy, so every unavailability
// the table reports is storm-caused, not capacity-caused.
func DefaultConfig() Config {
	const us = simclock.Microsecond
	const ms = simclock.Millisecond
	return Config{
		Requests:      2000,
		Interarrival:  50 * us,
		ArrivalJitter: 20 * us,
		ServiceTime:   250 * us,
		ServiceJitter: 100 * us,

		BackendSlots: 4,
		QueueDepth:   32,

		Policy: PolicyRR,

		Deadline:     10 * ms,
		MaxRetries:   3,
		RetryBackoff: 500 * us,
		RetryFactor:  2,
		RetryBudget:  0.1,
		RetryBurst:   20,

		ProbeInterval:  1 * ms,
		ProbeFailAfter: 2,
		ProbeRiseAfter: 2,

		Breaker: BreakerConfig{FailThreshold: 5, OpenFor: 5 * ms, HalfOpenSuccesses: 2},

		Net: NetConfig{
			LinkLatency:     5 * us,
			Bandwidth:       1250 * 1000 * 1000,
			RequestBytes:    1500,
			ResponseBytes:   8192,
			RTO:             200 * us,
			RTOJitter:       50 * us,
			RTOFactor:       2,
			MaxRetransmits:  4,
			ConnectRetries:  3,
			ProbeTimeout:    200 * us,
			ResponseTimeout: 8 * ms,
		},

		Seed: 42,
	}
}

// Result is what one fleet run reports.
type Result struct {
	Total        int // requests that arrived
	OK           int // served within deadline
	Shed         int // refused: backlog overflow at the wire, or no routable backend
	Failed       int // dispatched but never served
	DeadlineMiss int // subset of Failed that ran out of deadline
	Retries      int // re-dispatches performed
	BudgetDenied int // retries refused by the fleet-wide budget
	BreakerOpens int // open transitions across all breakers
	FalseTrips   int // breaker opens while the backend was actually alive (the wire lied)
	Quarantines  int // deliberate containment opens (Quarantine calls that landed; never FalseTrips)
	Retransmits  int // fabric segments re-sent after a presumed loss
	Events       int // virtual-time events executed (the heap's pop count)
	Restarts     int // supervisor restarts summed over initial backends
	MinActive    int // fewest structurally active backends at any instant
	End          simclock.Time

	// Autoscaler accounting (zero unless the fleet was built with
	// NewAutoscaled).
	ScaleUps   int           // scale-up decisions taken
	ScaleDowns int           // scale-down drains started
	Restores   int           // backends launched via snapshot restore
	ColdBoots  int           // backends launched via cold boot (fallbacks included)
	PeakActive int           // most structurally active backends at any instant
	FullAt     simclock.Time // first instant the pool reached Max (-1 = never)

	// Memory-pressure accounting (zero unless a MemoryPlane was
	// attached). MemSheds counts arrivals refused by the pressure
	// ladder's shed rung; they are also counted in Shed.
	MemSheds int
	Mem      MemStats

	// Latencies holds arrival-to-completion times of served requests, in
	// completion order.
	Latencies []simclock.Duration
}

// Availability is the fraction of offered requests that were served.
func (r *Result) Availability() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.OK) / float64(r.Total)
}

// ShedRate is the fraction of offered requests refused at admission.
func (r *Result) ShedRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Total)
}

// Percentile returns the p-th percentile served latency.
func (r *Result) Percentile(p float64) simclock.Duration {
	ns := make([]int64, len(r.Latencies))
	for i, d := range r.Latencies {
		ns[i] = int64(d)
	}
	return simclock.Duration(metrics.Percentile(ns, p))
}

// request is one client request's journey through the front-end.
type request struct {
	id       int
	arrival  simclock.Time
	attempts int // dispatches so far

	// done, set by Inject in attached mode, fires once at resolution.
	done func(o Outcome, at simclock.Time)
}

// event is one scheduled state change; seq breaks time ties in schedule
// order, which is what makes the run replayable.
type event struct {
	at  simclock.Time
	seq int
	fn  func(now simclock.Time)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Fleet is the running front-end. Construct with New, drive with Run.
type Fleet struct {
	cfg      Config
	clk      *simclock.Clock
	backends []*Backend
	inj      *faults.Injector // injected faults, fleet and fabric planes; nil = clean wire

	// Attached mode (NewAttached): the fleet is one cell of a larger
	// control plane — events go to the external engine, NICs join the
	// shared fabric in zone, and the heartbeat loop runs until stopped.
	ext     fabric.Scheduler
	zone    string
	stopped bool

	net    *fabric.Network
	lbNode *fabric.Node

	arrivalRng *faults.Stream
	serviceRng *faults.Stream

	events eventQueue
	seq    int
	popped int

	retryTokens float64
	rrNext      int
	ring        []ringPoint // sorted vnode ring, maintained incrementally

	plan     *UpgradePlan
	upgraded bool // plan finished (or absent)

	scaler       *AutoscalePolicy
	scaleSeq     int // launches requested so far
	scalePending int // launches provisioning, not yet admitted
	upReadyAt    simclock.Time
	downReadyAt  simclock.Time

	mem      MemoryPlane // nil: no memory-pressure plane attached
	memEvery simclock.Duration

	// Telemetry (attached via Observe; nil = disabled, zero cost).
	tr            *telemetry.Tracer
	trTrack       string
	netTrack      string // the fabric's lane (trTrack + "/net")
	mOK           *telemetry.Counter
	mShed         *telemetry.Counter
	mFailed       *telemetry.Counter
	mRetries      *telemetry.Counter
	mBreakerOpens *telemetry.Counter
	hLatency      *telemetry.Histogram

	resolved int
	res      Result
}

// New assembles a fleet over the initial backends. plan may be nil (no
// rolling upgrade) and inj may be nil (no faults anywhere on the wire).
func New(cfg Config, backends []*Backend, plan *UpgradePlan, inj *faults.Injector) *Fleet {
	return NewAutoscaled(cfg, backends, nil, plan, inj)
}

// NewAutoscaled is New plus a demand-driven autoscaler: the pool grows
// and shrinks between the policy's Min and Max, provisioning new
// backends through the policy (snapshot restore or cold boot). scaler
// may be nil (fixed pool).
func NewAutoscaled(cfg Config, backends []*Backend, scaler *AutoscalePolicy, plan *UpgradePlan, inj *faults.Injector) *Fleet {
	f := &Fleet{
		cfg:         cfg,
		clk:         simclock.New(),
		inj:         inj,
		arrivalRng:  faults.NewStream(cfg.Seed),
		serviceRng:  faults.NewStream(cfg.Seed ^ 0xA5A5A5A5A5A5A5A5),
		retryTokens: cfg.RetryBurst,
		plan:        plan,
		upgraded:    plan == nil,
		scaler:      scaler,
	}
	f.res.FullAt = -1

	net, err := fabric.New(f.fabricParams(), f, inj)
	if err != nil {
		panic(fmt.Sprintf("fleet: bad fabric config: %v", err))
	}
	f.net = net
	lb, err := net.AddNode("lb", fabric.LinkSpec{})
	if err != nil {
		panic(fmt.Sprintf("fleet: %v", err))
	}
	f.lbNode = lb

	for _, b := range backends {
		f.admit(b, 0)
		f.res.Restarts += b.Timeline.Stats.Restarts
	}
	f.res.MinActive = f.activeCount()
	f.notePool(0)
	return f
}

// fabricParams maps the fleet's NetConfig onto the fabric, wiring the
// legacy fleet drop sites in as extra per-segment faults.
func (f *Fleet) fabricParams() fabric.Params { return FabricParams(f.cfg) }

// FabricParams maps a fleet config's NetConfig onto fabric parameters —
// exported so attached-mode owners (the region control plane) build the
// shared fabric with exactly the tuning a standalone fleet would.
func FabricParams(cfg Config) fabric.Params {
	nc := cfg.Net
	p := fabric.DefaultParams()
	if nc.CIDR != "" {
		p.CIDR = nc.CIDR
	}
	if nc.LinkLatency != 0 || nc.Bandwidth != 0 {
		p.DefaultLink = fabric.LinkSpec{Latency: nc.LinkLatency, Bandwidth: nc.Bandwidth}
	}
	if nc.RTO > 0 {
		p.RTO = nc.RTO
	}
	if nc.RTOFactor > 0 {
		p.RTOFactor = nc.RTOFactor
	}
	p.RTOJitter = nc.RTOJitter
	if nc.MaxRetransmits > 0 {
		p.MaxRetransmits = nc.MaxRetransmits
	}
	if nc.ConnectRetries > 0 {
		p.ConnectRetries = nc.ConnectRetries
	}
	p.DataDropSite = SiteDispatchDrop
	p.ProbeDropSite = SiteProbeDrop
	p.Seed = cfg.Seed ^ 0xFA_B0_0C
	return p
}

// Now and Schedule implement fabric.Scheduler, so wire events interleave
// with dispatch, probe and autoscaler events on the one replayable heap.
func (f *Fleet) Now() simclock.Time {
	if f.ext != nil {
		return f.ext.Now()
	}
	return f.clk.Now()
}

// Schedule enqueues fn at virtual time at (never before now).
func (f *Fleet) Schedule(at simclock.Time, fn func(now simclock.Time)) { f.schedule(at, fn) }

// Net exposes the fabric under the pool for tables and tests.
func (f *Fleet) Net() *fabric.Network { return f.net }

// Clock exposes the fleet's own clock so observers (the SLO plane's
// rolling-window samplers) can register aligned-interval callbacks that
// fire as Run advances virtual time. Attached fleets have no clock of
// their own — the owning engine drives time — so Clock returns nil
// there; sample the owner's clock instead.
func (f *Fleet) Clock() *simclock.Clock {
	if f.ext != nil {
		return nil
	}
	return f.clk
}

// Run plays the whole workload and returns the result. Deterministic:
// the only inputs are the config, the backend timelines, the upgrade
// plan, and the injector's plan and seed.
func (f *Fleet) Run() Result {
	if f.ext != nil {
		panic("fleet: Run on an attached fleet; the owning engine drives it")
	}
	// Arrivals, jittered from the seeded stream.
	at := f.cfg.TrafficStart
	for i := 0; i < f.cfg.Requests; i++ {
		r := &request{id: i, arrival: at.Add(f.jitter(f.arrivalRng, f.cfg.ArrivalJitter))}
		f.schedule(r.arrival, func(now simclock.Time) { f.admitRequest(r, now) })
		at = at.Add(f.cfg.Interarrival)
	}
	f.res.Total = f.cfg.Requests
	f.schedule(simclock.Time(f.cfg.ProbeInterval), f.probeTick)
	if f.plan != nil {
		f.schedule(f.plan.Start, func(now simclock.Time) { f.startUpgrade(now) })
	}
	if f.scaler != nil {
		f.schedule(simclock.Time(f.scaler.Evaluate), f.autoscaleTick)
	}
	if f.mem != nil {
		f.schedule(simclock.Time(f.memEvery), f.memTick)
	}
	for f.events.Len() > 0 {
		e := heap.Pop(&f.events).(*event)
		f.popped++
		f.clk.AdvanceTo(e.at)
		e.fn(e.at)
	}
	f.res.End = f.clk.Now()
	f.res.Events = f.popped
	f.res.Retransmits = f.net.Stats().Retransmits
	if f.mem != nil {
		f.res.Mem = f.mem.Finish(f.res.End)
	}
	return f.res
}

func (f *Fleet) schedule(at simclock.Time, fn func(now simclock.Time)) {
	if f.ext != nil {
		if at < f.ext.Now() {
			at = f.ext.Now()
		}
		f.ext.Schedule(at, fn)
		return
	}
	if at < f.clk.Now() {
		at = f.clk.Now()
	}
	f.seq++
	heap.Push(&f.events, &event{at: at, seq: f.seq, fn: fn})
}

func (f *Fleet) jitter(rng *faults.Stream, span simclock.Duration) simclock.Duration {
	if span <= 0 {
		return 0
	}
	return simclock.Duration(rng.Intn(int(span)))
}

// admit places a backend in rotation at time now: a NIC on the fabric
// with a bound listener, a fresh breaker, and an optimistic heartbeat
// verdict.
func (f *Fleet) admit(b *Backend, now simclock.Time) {
	b.start = now
	b.admitted = true
	b.healthy = true
	b.breaker = NewBreaker(f.cfg.Breaker)

	node, err := f.net.AddNodeZone(b.Name, f.zone, fabric.LinkSpec{})
	if err != nil {
		panic(fmt.Sprintf("fleet: admitting %s: %v", b.Name, err))
	}
	bb := b
	node.SetAlive(func(t simclock.Time) bool { return bb.aliveAt(t) })
	b.node = node
	b.lst = node.Listen(servicePort, f.cfg.QueueDepth)
	b.lst.OnPending = func(t simclock.Time) { f.serverPump(bb, t) }

	f.backends = append(f.backends, b)
	f.ringInsert(b)
	f.observeBackend(b, now)
}

// servicePort is the well-known port every backend serves on.
const servicePort = 80

func (f *Fleet) activeCount() int {
	n := 0
	for _, b := range f.backends {
		if b.active() {
			n++
		}
	}
	return n
}

func (f *Fleet) noteActive() {
	if n := f.activeCount(); n < f.res.MinActive {
		f.res.MinActive = n
	}
}

// roomFor reports whether the balancer would open another connection to
// b: its own outstanding-connection count must fit the backend's serving
// slots plus its listener backlog. This is the balancer's bookkeeping
// view; the fabric's backlog overflow is the ground-truth backstop when
// that view is stale (retransmitted SYNs, partitions).
func (f *Fleet) roomFor(b *Backend) bool {
	return b.inflight < f.cfg.BackendSlots+f.cfg.QueueDepth
}

// admitRequest is the admission-control gate: refuse outright while the
// memory-pressure ladder sheds, otherwise route by policy and dispatch
// over the fabric; with no routable backend the request is shed.
func (f *Fleet) admitRequest(r *request, now simclock.Time) {
	if f.mem != nil && r.attempts == 0 && f.mem.ShedAdmission(now) {
		f.res.MemSheds++
		f.shed(r, "mem-pressure", now)
		return
	}
	b := f.pick(r, now)
	if b == nil {
		f.shed(r, "no-backend", now)
		return
	}
	f.dispatch(r, b, now)
}

// shed resolves a request refused without dispatch.
func (f *Fleet) shed(r *request, reason string, now simclock.Time) {
	f.res.Shed++
	f.resolved++
	f.mShed.Inc()
	if f.tr != nil {
		f.tr.Instant("fleet", f.trTrack, "shed", now,
			telemetry.A("req", strconv.Itoa(r.id)),
			telemetry.A("reason", reason))
	}
	if r.done != nil {
		r.done(OutcomeShed, now)
	}
}

// failRequest resolves a request that was dispatched but never served.
func (f *Fleet) failRequest(r *request, now simclock.Time) {
	f.res.Failed++
	f.resolved++
	f.mFailed.Inc()
	if r.done != nil {
		r.done(OutcomeFailed, now)
	}
}

// dispatch opens a connection to b over the fabric and wires the
// request's fate to the connection's. Ground truth decides at the wire:
// a dead backend refuses the SYN, a full backlog RSTs with overflow (the
// shed path), a partitioned or flapping link times the connection out
// after retransmission exhaustion.
func (f *Fleet) dispatch(r *request, b *Backend, now simclock.Time) {
	r.attempts++
	b.inflight++
	sent := now
	f.lbNode.Dial(b.node, servicePort, fabric.ConnCallbacks{
		Established: func(c *fabric.Conn, at simclock.Time) {
			c.SendRequest(f.cfg.Net.RequestBytes, f.cfg.Net.ResponseTimeout, at)
		},
		Response: func(c *fabric.Conn, at simclock.Time) {
			b.inflight--
			b.served++
			b.breaker.Success(at)
			f.res.OK++
			f.resolved++
			// Served traffic earns retry budget back, capped at the burst.
			f.retryTokens += f.cfg.RetryBudget
			if f.retryTokens > f.cfg.RetryBurst {
				f.retryTokens = f.cfg.RetryBurst
			}
			lat := at.Sub(r.arrival)
			f.res.Latencies = append(f.res.Latencies, lat)
			f.mOK.Inc()
			f.hLatency.Observe(lat)
			if r.done != nil {
				r.done(OutcomeOK, at)
			}
			if f.tr != nil {
				f.tr.Span("fleet", f.btrack(b), "dispatch", sent, at,
					telemetry.A("req", strconv.Itoa(r.id)),
					telemetry.A("conn", strconv.Itoa(c.ID())))
			}
			f.maybeDrained(b, at)
		},
		Failed: func(c *fabric.Conn, err error, at simclock.Time) {
			b.inflight--
			if errors.Is(err, fabric.ErrOverflow) {
				// The backend's backlog refused us: backpressure from a live
				// server. Shed, and never charge the breaker for it.
				f.shed(r, "backlog-overflow", at)
				f.maybeDrained(b, at)
				return
			}
			b.failed++
			if f.tr != nil {
				f.tr.Span("fleet", f.btrack(b), "dispatch-fail", sent, at,
					telemetry.A("req", strconv.Itoa(r.id)),
					telemetry.A("conn", strconv.Itoa(c.ID())),
					telemetry.A("err", err.Error()))
			}
			f.breakerFailure(b, at)
			f.maybeDrained(b, at)
			f.retry(r, at)
		},
	})
}

// breakerFailure charges b's breaker with a data-plane failure and
// accounts open transitions, flagging false trips — opens while the
// backend was actually alive, meaning the wire (not the VM) failed.
func (f *Fleet) breakerFailure(b *Backend, now simclock.Time) {
	before := b.breaker.State()
	b.breaker.Failure(now)
	if b.breaker.State() == BreakerOpen {
		f.res.BreakerOpens++
		if before != BreakerOpen && b.aliveAt(now) {
			f.res.FalseTrips++
			if f.tr != nil {
				f.tr.Instant("fleet", f.btrack(b), "breaker:false-trip", now)
				f.tr.Trip(f.btrack(b), "false-trip", now)
				// Dump the wire's own ring too: the retransmission storm
				// that talked the breaker into this is the post-mortem.
				f.tr.Trip(f.netTrack, "false-trip:"+b.Name, now)
			}
		}
	}
}

// serverPump is the backend's accept loop: while the VM is up and has a
// free serving slot, accept the oldest pending connection and schedule
// its service. A VM that died with connections queued simply stops
// pumping; the clients' own timeouts resolve them.
func (f *Fleet) serverPump(b *Backend, now simclock.Time) {
	if !b.aliveAt(now) {
		return
	}
	for b.serving < f.cfg.BackendSlots {
		c := b.lst.Accept(now)
		if c == nil {
			return
		}
		b.serving++
		cc := c
		bb := b
		c.WhenRequest(now, func(at simclock.Time) {
			svc := f.cfg.ServiceTime + f.jitter(f.serviceRng, f.cfg.ServiceJitter)
			f.schedule(at.Add(svc), func(t simclock.Time) {
				bb.serving--
				// A VM that died mid-service answers nothing; the client's
				// response deadline is how the front-end finds out.
				if bb.aliveAt(t) {
					cc.Respond(f.cfg.Net.ResponseBytes, t)
				}
				f.serverPump(bb, t)
			})
		})
	}
}

// retry re-dispatches a failed request under the retry policy: bounded
// attempts, exponential backoff under the per-request deadline, and the
// fleet-wide token budget.
func (f *Fleet) retry(r *request, now simclock.Time) {
	if r.attempts > f.cfg.MaxRetries {
		f.failRequest(r, now)
		return
	}
	backoff := f.cfg.RetryBackoff
	for i := 1; i < r.attempts; i++ {
		if f.cfg.RetryFactor > 1 {
			backoff *= simclock.Duration(f.cfg.RetryFactor)
		}
	}
	retryAt := now.Add(backoff)
	if retryAt.Sub(r.arrival) > f.cfg.Deadline {
		f.res.DeadlineMiss++
		if f.tr != nil {
			f.tr.Instant("fleet", f.trTrack, "deadline-miss", now,
				telemetry.A("req", strconv.Itoa(r.id)))
		}
		f.failRequest(r, now)
		return
	}
	if f.retryTokens < 1 {
		f.res.BudgetDenied++
		if f.tr != nil {
			f.tr.Instant("fleet", f.trTrack, "budget-denied", now,
				telemetry.A("req", strconv.Itoa(r.id)))
		}
		f.failRequest(r, now)
		return
	}
	f.retryTokens--
	f.res.Retries++
	f.mRetries.Inc()
	if f.tr != nil {
		f.tr.Span("fleet", f.trTrack, "retry-backoff", now, retryAt,
			telemetry.A("req", strconv.Itoa(r.id)),
			telemetry.A("attempt", strconv.Itoa(r.attempts)))
	}
	f.schedule(retryAt, func(t simclock.Time) { f.admitRequest(r, t) })
}

// probeTick is the heartbeat: launch a probe datagram over the fabric at
// every in-rotation backend, then reschedule itself while work remains.
// Verdicts land asynchronously — a reply beats the timeout or it
// doesn't — which is exactly what lets a one-sided partition produce
// false-negative probe failures.
func (f *Fleet) probeTick(now simclock.Time) {
	for _, b := range f.backends {
		if !b.admitted || b.retired {
			continue
		}
		bb := b
		f.net.Probe(f.lbNode, b.node, f.cfg.Net.ProbeTimeout, func(ok bool, at simclock.Time) {
			f.probeVerdict(bb, ok, at)
		})
	}
	if f.ext != nil {
		if !f.stopped {
			f.schedule(now.Add(f.cfg.ProbeInterval), f.probeTick)
		}
	} else if f.resolved < f.cfg.Requests || !f.upgraded {
		f.schedule(now.Add(f.cfg.ProbeInterval), f.probeTick)
	}
}

// probeVerdict applies one heartbeat result to the health view and the
// breaker.
func (f *Fleet) probeVerdict(b *Backend, ok bool, now simclock.Time) {
	if b.retired {
		return
	}
	if ok {
		b.probeOKs++
		b.probeFails = 0
		if !b.healthy && b.probeOKs >= f.cfg.ProbeRiseAfter {
			b.healthy = true
			if f.tr != nil {
				f.tr.Instant("fleet", f.btrack(b), "health:up", now)
			}
		}
		b.breaker.ProbeSuccess(now)
		// A recovered VM may have connections parked in its backlog.
		f.serverPump(b, now)
		return
	}
	b.probeFails++
	b.probeOKs = 0
	if b.healthy && b.probeFails >= f.cfg.ProbeFailAfter {
		b.healthy = false
		if f.tr != nil {
			f.tr.Instant("fleet", f.btrack(b), "health:down", now)
		}
	}
	before := b.breaker.State()
	b.breaker.ProbeFailure(now)
	if b.breaker.State() == BreakerOpen && before != BreakerOpen && b.aliveAt(now) {
		f.res.FalseTrips++
		if f.tr != nil {
			f.tr.Instant("fleet", f.btrack(b), "breaker:false-trip", now)
			f.tr.Trip(f.btrack(b), "false-trip", now)
			f.tr.Trip(f.netTrack, "false-trip:"+b.Name, now)
		}
	}
}

// Backends exposes the pool (initial + surge + replacements) for tables
// and tests.
func (f *Fleet) Backends() []*Backend { return f.backends }

// String summarizes the last result (Fleet is not a Stringer for tables;
// experiments render their own).
func (f *Fleet) String() string {
	return fmt.Sprintf("fleet(%d backends, %d/%d served)", len(f.backends), f.res.OK, f.res.Total)
}
