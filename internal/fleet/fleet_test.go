package fleet

import (
	"fmt"
	"testing"

	"lupine/internal/faults"
	"lupine/internal/simclock"
	"lupine/internal/vmm"
)

// checkConservation asserts every offered request resolved exactly once.
func checkConservation(t *testing.T, res Result) {
	t.Helper()
	if got := res.OK + res.Shed + res.Failed; got != res.Total {
		t.Errorf("request conservation broken: OK %d + Shed %d + Failed %d = %d, want %d",
			res.OK, res.Shed, res.Failed, got, res.Total)
	}
}

func TestHealthyPoolServesEverything(t *testing.T) {
	cfg := DefaultConfig()
	f := New(cfg, []*Backend{
		NewBackend("a", AlwaysUp()),
		NewBackend("b", AlwaysUp()),
		NewBackend("c", AlwaysUp()),
	}, nil, nil)
	res := f.Run()
	checkConservation(t, res)
	if res.OK != res.Total {
		t.Errorf("served %d of %d on a healthy pool", res.OK, res.Total)
	}
	if res.Shed != 0 || res.Retries != 0 || res.BreakerOpens != 0 {
		t.Errorf("healthy pool saw shed=%d retries=%d opens=%d, want zeros",
			res.Shed, res.Retries, res.BreakerOpens)
	}
	if p50, p99 := res.Percentile(50), res.Percentile(99); p50 <= 0 || p99 < p50 {
		t.Errorf("implausible latency percentiles p50=%v p99=%v", p50, p99)
	}
}

// TestOutageRoutedAround drops one backend mid-run: the pool has spare
// capacity, so health checks and the breaker steer traffic away and
// almost everything is still served.
func TestOutageRoutedAround(t *testing.T) {
	flaky := Timeline{
		Up:      []Interval{{From: 0, To: simclock.Time(20 * ms)}},
		End:     simclock.Time(60 * ms),
		UpAfter: true,
	}
	cfg := DefaultConfig()
	f := New(cfg, []*Backend{
		NewBackend("a", AlwaysUp()),
		NewBackend("b", AlwaysUp()),
		NewBackend("c", flaky),
	}, nil, nil)
	res := f.Run()
	checkConservation(t, res)
	if res.BreakerOpens == 0 {
		t.Error("the outage never tripped the breaker")
	}
	if res.Retries == 0 {
		t.Error("no retries despite failures during the outage")
	}
	if avail := res.Availability(); avail < 0.97 {
		t.Errorf("availability %.3f with 2/3 healthy capacity, want >= 0.97", avail)
	}
	c := f.Backends()[2]
	if c.Served() == 0 || c.Failed() == 0 {
		t.Errorf("flaky backend served=%d failed=%d, want both nonzero", c.Served(), c.Failed())
	}
}

// TestDeadPoolShedsInsteadOfAmplifying starves the fleet completely: a
// bounded queue plus the retry budget must shed load with every request
// accounted, rather than retrying forever.
func TestDeadPoolShedsInsteadOfAmplifying(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Requests = 500
	f := New(cfg, []*Backend{
		NewBackend("a", NeverUp()),
		NewBackend("b", NeverUp()),
	}, nil, nil)
	res := f.Run()
	checkConservation(t, res)
	if res.OK != 0 {
		t.Errorf("served %d requests on a dead pool", res.OK)
	}
	if res.Shed == 0 {
		t.Error("bounded queue never shed on a dead pool")
	}
	// Breakers and health checks stop the dispatch storm, so retries stay
	// far below offered load even before the budget engages.
	if res.Retries > res.Total/2 {
		t.Errorf("retries %d against %d offered requests: the storm amplified", res.Retries, res.Total)
	}
}

// TestRetryBudgetBoundsAmplification disables the breaker and the health
// checker so every request dispatches and fails: the fleet-wide token
// budget is the last line against retry amplification. With no successes
// there is no refill, so retries are capped at exactly the burst.
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Requests = 500
	cfg.Breaker.FailThreshold = 1 << 30
	cfg.ProbeFailAfter = 1 << 30
	f := New(cfg, []*Backend{
		NewBackend("a", NeverUp()),
		NewBackend("b", NeverUp()),
	}, nil, nil)
	res := f.Run()
	checkConservation(t, res)
	if res.Retries != int(cfg.RetryBurst) {
		t.Errorf("retries = %d, want exactly the burst %v (no refill without successes)",
			res.Retries, cfg.RetryBurst)
	}
	if res.BudgetDenied == 0 {
		t.Error("retry budget never engaged")
	}
	if res.BreakerOpens != 0 {
		t.Errorf("breaker opened %d times with the threshold disabled", res.BreakerOpens)
	}
}

func TestTimelineFromReport(t *testing.T) {
	rep := vmm.Supervise(vmm.RestartPolicy{MaxRestarts: 2, Backoff: 10 * ms}, func(attempt int) vmm.Attempt {
		switch attempt {
		case 1:
			return vmm.Attempt{Outcome: vmm.OutcomePanic, Ready: true, ReadyAfter: 5 * ms, Ran: 25 * ms}
		case 2:
			return vmm.Attempt{Outcome: vmm.OutcomeBootFail, Ran: 3 * ms}
		default:
			return vmm.Attempt{Outcome: vmm.OutcomeOK, Ready: true, ReadyAfter: 5 * ms, Ran: 45 * ms}
		}
	})
	tl := FromReport(rep)
	// Timeline: up [5,25), down through backoff+dead boot, up [53,93),
	// recovered => up forever after End=93.
	cases := []struct {
		at   simclock.Duration
		want bool
	}{
		{0, false}, {5 * ms, true}, {24 * ms, true}, {25 * ms, false},
		{40 * ms, false}, {53 * ms, true}, {92 * ms, true}, {93 * ms, true}, {500 * ms, true},
	}
	for _, c := range cases {
		if got := tl.UpAt(simclock.Time(c.at)); got != c.want {
			t.Errorf("UpAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if tl.Stats.Restarts != 2 || tl.Stats.Panics != 1 || tl.Stats.BootFails != 1 || tl.Stats.OKs != 1 {
		t.Errorf("timeline stats = %+v", tl.Stats)
	}
}

// TestRollingUpgradeInvariant runs a rollout over a serving pool: the
// structurally active count must never fall below the original pool size
// (the surge pays for every drain), every original backend must be
// replaced, and service must continue throughout.
func TestRollingUpgradeInvariant(t *testing.T) {
	cfg := DefaultConfig()
	plan := &UpgradePlan{
		Start:        simclock.Time(10 * ms),
		BootTime:     2 * ms,
		DrainTimeout: 5 * ms,
		RebuildTime:  func(i int) simclock.Duration { return 3 * ms },
		Surge:        AlwaysUp(),
	}
	f := New(cfg, []*Backend{
		NewBackend("a", AlwaysUp()),
		NewBackend("b", AlwaysUp()),
		NewBackend("c", AlwaysUp()),
	}, plan, nil)
	res := f.Run()
	checkConservation(t, res)
	if res.MinActive < 3 {
		t.Errorf("active backends dipped to %d during the rollout, want >= 3 by construction", res.MinActive)
	}
	if !f.upgraded {
		t.Error("rollout never completed")
	}
	var names []string
	retired := 0
	for _, b := range f.Backends() {
		names = append(names, b.Name)
		if b.retired {
			retired++
		}
	}
	// Original a,b,c plus surge all retired; replacements a+v2,b+v2,c+v2 remain.
	if retired != 4 {
		t.Errorf("retired %d backends (%v), want 4 (a,b,c,surge)", retired, names)
	}
	for _, want := range []string{"a+v2", "b+v2", "c+v2", "surge"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("no %s in pool %v", want, names)
		}
	}
	if avail := res.Availability(); avail < 0.99 {
		t.Errorf("availability %.3f during a healthy rollout, want >= 0.99", avail)
	}
}

// TestFleetDeterministicWithFaultPlan replays a full run — flaky
// backends, fleet-plane probe/dispatch drops, rolling upgrade — twice
// and requires identical results.
func TestFleetDeterministicWithFaultPlan(t *testing.T) {
	flaky := Timeline{
		Up:      []Interval{{From: 0, To: simclock.Time(15 * ms)}, {From: simclock.Time(25 * ms), To: simclock.Time(70 * ms)}},
		End:     simclock.Time(70 * ms),
		UpAfter: true,
	}
	run := func() string {
		cfg := DefaultConfig()
		inj := faults.MustNew(faults.Plan{
			Seed: 77,
			Rules: []faults.Rule{
				{Site: SiteProbeDrop, Prob: 0.05},
				{Site: SiteDispatchDrop, From: simclock.Time(30 * ms), To: simclock.Time(50 * ms), Prob: 0.02},
			},
		})
		plan := &UpgradePlan{
			Start:        simclock.Time(40 * ms),
			BootTime:     2 * ms,
			DrainTimeout: 5 * ms,
			Surge:        AlwaysUp(),
		}
		f := New(cfg, []*Backend{
			NewBackend("a", flaky),
			NewBackend("b", AlwaysUp()),
			NewBackend("c", AlwaysUp()),
		}, plan, inj)
		res := f.Run()
		checkConservation(t, res)
		return fmt.Sprintf("%+v", res)
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("fleet run not deterministic:\n--- first\n%s\n--- second\n%s", first, second)
	}
}
