package fleet

import (
	"sort"

	"lupine/internal/simclock"
)

// Load-balancing policies over the fabric. All three route only to
// dispatchable backends (in rotation, heartbeat-healthy, breaker
// willing) with room in the balancer's bookkeeping view; they differ in
// which of those backends a request prefers.
//
//   - rr: classic round-robin, spreading connections evenly.
//   - least: least-loaded — fewest outstanding connections, ties to the
//     lowest pool index; adapts to slow or degraded links.
//   - hash: consistent hashing of a synthetic client key onto a vnode
//     ring, so a client's connections stick to one backend (connection
//     affinity) and pool changes only remap the keys next to the change.

// ringPoint is one vnode on the consistent-hash ring.
type ringPoint struct {
	hash uint64
	b    *Backend
}

// ringVnodes is how many ring points each backend contributes; more
// points smooth the key distribution.
const ringVnodes = 32

// mix64 is splitmix64's finalizer: a cheap, seedless, stable hash for
// ring points and client keys. Determinism matters more than quality
// here, but this passes the usual avalanche tests anyway.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hashName folds a backend name into a ring seed.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// The ring is maintained incrementally: membership changes touch only
// the joining or leaving backend's own vnodes, so every other backend's
// points — and therefore the keys they own — stay exactly where they
// were. A departing backend's arcs shed to their clockwise neighbors
// and nothing else moves, which is the affinity-preserving behavior
// consistent hashing exists for. (The previous full rebuild-and-resort
// on every change produced the same ring at O(pool) churn per change;
// these operations make the bounded-movement guarantee structural.)

// ringLess is the ring's total order: hash, then owner name so equal
// hashes are deterministic.
func ringLess(a, b ringPoint) bool {
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return a.b.Name < b.b.Name
}

// ringInsert adds b's vnodes to the sorted ring, leaving every other
// point untouched.
func (f *Fleet) ringInsert(b *Backend) {
	seed := hashName(b.Name)
	for v := 0; v < ringVnodes; v++ {
		pt := ringPoint{hash: mix64(seed + uint64(v)), b: b}
		i := sort.Search(len(f.ring), func(j int) bool { return ringLess(pt, f.ring[j]) })
		f.ring = append(f.ring, ringPoint{})
		copy(f.ring[i+1:], f.ring[i:])
		f.ring[i] = pt
	}
}

// ringRemove deletes exactly b's vnodes, preserving the order of the
// rest.
func (f *Fleet) ringRemove(b *Backend) {
	keep := f.ring[:0]
	for _, pt := range f.ring {
		if pt.b != b {
			keep = append(keep, pt)
		}
	}
	f.ring = keep
}

// clientKey is the synthetic client identity used for affinity: with
// HashClients configured, requests fold onto that many distinct clients
// (think: source IPs behind the balancer); otherwise every request is
// its own client.
func (f *Fleet) clientKey(r *request) uint64 {
	if f.cfg.HashClients > 0 {
		return uint64(r.id % f.cfg.HashClients)
	}
	return uint64(r.id)
}

// pick routes one request to a backend per the configured policy, or nil
// when no dispatchable backend has room.
func (f *Fleet) pick(r *request, now simclock.Time) *Backend {
	switch f.cfg.Policy {
	case PolicyLeast:
		return f.pickLeast(now)
	case PolicyHash:
		return f.pickHash(r, now)
	default:
		return f.pickRR(now)
	}
}

// pickRR scans round-robin from the cursor.
func (f *Fleet) pickRR(now simclock.Time) *Backend {
	n := len(f.backends)
	for i := 0; i < n; i++ {
		b := f.backends[(f.rrNext+i)%n]
		if b.dispatchable(now) && f.roomFor(b) {
			f.rrNext = (f.rrNext + i + 1) % n
			return b
		}
	}
	return nil
}

// pickLeast takes the dispatchable backend with the fewest outstanding
// connections; ties go to the lowest pool index so the choice is
// deterministic.
func (f *Fleet) pickLeast(now simclock.Time) *Backend {
	var best *Backend
	for _, b := range f.backends {
		if !b.dispatchable(now) || !f.roomFor(b) {
			continue
		}
		if best == nil || b.inflight < best.inflight {
			best = b
		}
	}
	return best
}

// pickHash walks the ring clockwise from the client's key and takes the
// first dispatchable owner with room — affinity first, availability
// when the preferred backend is out.
func (f *Fleet) pickHash(r *request, now simclock.Time) *Backend {
	n := len(f.ring)
	if n == 0 {
		return nil
	}
	key := mix64(f.clientKey(r) ^ 0x9E3779B97F4A7C15)
	start := sort.Search(n, func(i int) bool { return f.ring[i].hash >= key }) % n
	seen := make(map[*Backend]bool, 4)
	for i := 0; i < n; i++ {
		b := f.ring[(start+i)%n].b
		if seen[b] {
			continue
		}
		seen[b] = true
		if b.dispatchable(now) && f.roomFor(b) {
			return b
		}
	}
	return nil
}
