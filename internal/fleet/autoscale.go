package fleet

import (
	"fmt"

	"lupine/internal/simclock"
)

// Demand-driven autoscaling: the front-end watches its own demand signal
// (in-flight requests plus the pending queue) against pool capacity and
// grows or shrinks the pool between Min and Max, with per-direction
// cooldowns so a noisy signal cannot flap the pool. How a new backend is
// provisioned is the policy's business: a snapshot-enabled pool restores
// a clone in microseconds, a cold pool pays a full boot — which is
// exactly the time-to-capacity gap the surge experiment measures.

// Launch describes one autoscaler-provisioned backend.
type Launch struct {
	Ready    simclock.Duration // provisioning latency before the backend joins
	Restored bool              // true: snapshot restore; false: cold boot (fallbacks included)
	Timeline Timeline          // service record once admitted; zero value means AlwaysUp

	// OnRetired runs once when the backend leaves the pool for good —
	// scale-down drain, OOM kill, or upgrade. Provision hooks use it to
	// release the backing snapshot.Clone so the CoW aggregate stops
	// charging for pages whose VM is gone.
	OnRetired func(now simclock.Time)
}

// AutoscalePolicy tunes the autoscaler. All durations are virtual.
type AutoscalePolicy struct {
	Min, Max   int     // pool size bounds (structurally active backends)
	TargetUtil float64 // scale up when demand/capacity exceeds this
	LowUtil    float64 // scale down when demand/capacity falls below this

	Evaluate     simclock.Duration // decision interval
	UpCooldown   simclock.Duration // min time between scale-up decisions
	DownCooldown simclock.Duration // min time between scale-down decisions
	MaxStep      int               // max backends added per decision (0 = no cap)
	DrainTimeout simclock.Duration // scale-down drain bound

	// Provision supplies each new backend (seq counts from 1, now is the
	// decision instant — restore fault windows key off it). Nil
	// provisions instant AlwaysUp backends, for tests.
	Provision func(seq int, now simclock.Time) Launch
}

// launchTimeline defaults a zero-value Launch timeline to AlwaysUp: an
// autoscaler never provisions a dead-on-arrival backend on purpose.
func launchTimeline(l Launch) Timeline {
	if len(l.Timeline.Up) == 0 && l.Timeline.End == 0 && !l.Timeline.UpAfter {
		return AlwaysUp()
	}
	return l.Timeline
}

// demand is the autoscaler's signal: outstanding connections across the
// pool — requests being served plus requests waiting in backlogs.
func (f *Fleet) demand() int {
	n := 0
	for _, b := range f.backends {
		if !b.retired {
			n += b.inflight
		}
	}
	return n
}

// autoscaleTick is the decision loop: compare demand to capacity, scale
// up (bounded by Max, MaxStep and the up-cooldown), or drain the newest
// backend down (bounded by Min and the down-cooldown, and never while a
// launch is still provisioning), then reschedule while work remains.
func (f *Fleet) autoscaleTick(now simclock.Time) {
	p := f.scaler
	active := f.activeCount()
	provisioned := active + f.scalePending
	capacity := provisioned * f.cfg.BackendSlots
	demand := f.demand()

	switch {
	case demand > int(p.TargetUtil*float64(capacity)) && provisioned < p.Max && now >= f.upReadyAt:
		// Enough new backends to bring utilization back to target.
		need := ceilDiv(demand, int(p.TargetUtil*float64(f.cfg.BackendSlots))) - provisioned
		if need < 1 {
			need = 1
		}
		if p.MaxStep > 0 && need > p.MaxStep {
			need = p.MaxStep
		}
		if need > p.Max-provisioned {
			need = p.Max - provisioned
		}
		for i := 0; i < need; i++ {
			f.launch(now)
		}
		f.res.ScaleUps++
		f.upReadyAt = now.Add(p.UpCooldown)
	case demand < int(p.LowUtil*float64(capacity)) && f.scalePending == 0 && now >= f.downReadyAt:
		if b := f.newestActive(); b != nil && active > p.Min {
			f.drain(b, p.DrainTimeout, now, nil)
			f.res.ScaleDowns++
			f.downReadyAt = now.Add(p.DownCooldown)
		}
	}
	if f.resolved < f.cfg.Requests {
		f.schedule(now.Add(p.Evaluate), f.autoscaleTick)
	}
}

// launch provisions one backend through the policy and admits it when
// its provisioning latency elapses.
func (f *Fleet) launch(now simclock.Time) {
	f.scaleSeq++
	seq := f.scaleSeq
	l := Launch{}
	if f.scaler.Provision != nil {
		l = f.scaler.Provision(seq, now)
	}
	f.scalePending++
	f.schedule(now.Add(l.Ready), func(t simclock.Time) {
		f.scalePending--
		nb := NewBackend(fmt.Sprintf("auto%d", seq), launchTimeline(l))
		nb.onRelease = l.OnRetired
		f.admit(nb, t)
		f.observeProvision(nb, now, t, l.Restored, "scale-up")
		if l.Restored {
			f.res.Restores++
		} else {
			f.res.ColdBoots++
		}
		f.notePool(t)
	})
}

// newestActive returns the most recently admitted active backend — the
// natural scale-down victim (LIFO keeps the original pool stable).
func (f *Fleet) newestActive() *Backend {
	for i := len(f.backends) - 1; i >= 0; i-- {
		if f.backends[i].active() {
			return f.backends[i]
		}
	}
	return nil
}

// notePool records peak pool size and the first instant the pool reached
// the autoscaler's Max — the time-to-capacity metric.
func (f *Fleet) notePool(now simclock.Time) {
	n := f.activeCount()
	if n > f.res.PeakActive {
		f.res.PeakActive = n
	}
	if f.scaler != nil && f.res.FullAt < 0 && n >= f.scaler.Max {
		f.res.FullAt = now
	}
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
