package fleet

import (
	"fmt"

	"lupine/internal/fabric"
	"lupine/internal/faults"
	"lupine/internal/simclock"
)

// Attached mode: a fleet that is one cell of a larger control plane
// rather than a self-contained experiment. An attached fleet runs on an
// external event engine and a shared fabric (its balancer and backend
// NICs switched into one zone), and serves traffic the owner Injects —
// each request resolving through a callback — instead of generating its
// own arrival process. The dispatch machinery is unchanged: breakers,
// heartbeat probes, retry budget and policy routing all behave exactly
// as in a standalone fleet, which is the point — the region plane
// composes proven cells instead of reimplementing them.

// Outcome classifies how an injected request resolved.
type Outcome int

const (
	OutcomeOK     Outcome = iota // served within deadline
	OutcomeShed                  // refused at admission or by backlog overflow
	OutcomeFailed                // dispatched but never served
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeShed:
		return "shed"
	case OutcomeFailed:
		return "failed"
	}
	return "?"
}

// NewAttached assembles a fleet cell on an external engine and a shared
// fabric. Its balancer node and every backend NIC are switched into
// zone (so intra-cell traffic never crosses a trunk), and traffic
// arrives only via Inject. Start begins the heartbeat loop; Stop halts
// it so the owner's heap can drain.
func NewAttached(cfg Config, sched fabric.Scheduler, net *fabric.Network, zone string, inj *faults.Injector) *Fleet {
	f := &Fleet{
		cfg:         cfg,
		ext:         sched,
		zone:        zone,
		inj:         inj,
		arrivalRng:  faults.NewStream(cfg.Seed),
		serviceRng:  faults.NewStream(cfg.Seed ^ 0xA5A5A5A5A5A5A5A5),
		retryTokens: cfg.RetryBurst,
		upgraded:    true,
	}
	f.res.FullAt = -1
	f.net = net
	lbName := "lb"
	if zone != "" {
		lbName = zone + "/lb"
	}
	lb, err := net.AddNodeZone(lbName, zone, fabric.LinkSpec{})
	if err != nil {
		panic(fmt.Sprintf("fleet: %v", err))
	}
	f.lbNode = lb
	f.res.MinActive = 0
	return f
}

// Attached reports whether this fleet is an attached-mode cell.
func (f *Fleet) Attached() bool { return f.ext != nil }

// Start begins an attached fleet's heartbeat loop.
func (f *Fleet) Start(now simclock.Time) {
	f.schedule(now.Add(f.cfg.ProbeInterval), f.probeTick)
}

// Stop halts the heartbeat loop at its next tick, letting the owning
// engine's heap drain once in-flight work resolves.
func (f *Fleet) Stop() { f.stopped = true }

// Inject offers one request to an attached fleet at now. done (may be
// nil) fires exactly once when the request resolves — served, shed, or
// failed — at the resolving instant.
func (f *Fleet) Inject(id int, now simclock.Time, done func(o Outcome, at simclock.Time)) {
	f.res.Total++
	r := &request{id: id, arrival: now, done: done}
	f.admitRequest(r, now)
}

// Admit places b in rotation at now. Attached-mode owners grow the pool
// directly — evacuation restores and host-crash replacements land here.
func (f *Fleet) Admit(b *Backend, now simclock.Time) {
	f.admit(b, now)
	// Pre-traffic admissions establish the availability floor; admissions
	// after traffic starts (evacuation landings) never raise a historical
	// minimum back up.
	if f.res.Total == 0 && f.activeCount() > f.res.MinActive {
		f.res.MinActive = f.activeCount()
	}
	f.notePool(now)
}

// Retire removes b from the pool immediately, firing its release hooks.
// Attached-mode owners retire crashed hosts' backends before restoring
// replacements; in-flight requests resolve through their own timeouts.
func (f *Fleet) Retire(b *Backend, now simclock.Time) { f.retire(b, now) }

// Drain takes b out of the dispatch rotation, waits for its in-flight
// requests (bounded by timeout), retires it, then fires done (may be
// nil). Attached-mode owners drive rolling upgrades with it — the same
// drain/retire discipline a standalone fleet's upgrade plan uses.
func (f *Fleet) Drain(b *Backend, timeout simclock.Duration, now simclock.Time, done func(now simclock.Time)) {
	f.drain(b, timeout, now, done)
}

// Finish closes out an attached fleet's accounting. Wire counters stay
// with the shared fabric's Stats — they are not per-cell.
func (f *Fleet) Finish(now simclock.Time) Result {
	f.res.End = now
	return f.res
}

// ActiveCount reports structurally active pool members.
func (f *Fleet) ActiveCount() int { return f.activeCount() }

// Resolved reports how many injected requests have resolved.
func (f *Fleet) Resolved() int { return f.resolved }
