package fleet

import (
	"fmt"

	"lupine/internal/simclock"
)

// The memory-pressure plane: a pool can attach a MemoryPlane that the
// engine drives on a fixed virtual-time tick. The plane owns the host
// memory accounting (internal/hostmem) and its reclaim ladder; the fleet
// contributes the two levers only the front-end holds — refusing new
// admissions while pressure is full, and OOM-killing the lowest-priority
// pool member with a scheduled replacement launch.

// MemoryPlane is the pool-specific pressure controller the engine drives.
type MemoryPlane interface {
	// Tick runs one pressure control step at virtual time now. The
	// plane may call back into the fleet (OOMKill) from inside Tick.
	Tick(f *Fleet, now simclock.Time)

	// ShedAdmission reports whether new requests should be refused at
	// admission right now (the ladder's shed rung).
	ShedAdmission(now simclock.Time) bool

	// Finish folds remaining pressure time at end and returns the
	// plane's cumulative accounting for Result.Mem.
	Finish(end simclock.Time) MemStats
}

// MemStats is the memory plane's contribution to Result.
type MemStats struct {
	Capacity         int64             // physical host bytes the pool ran under
	Committed        int64             // promised bytes at peak (overcommit exposure)
	PeakUsed         int64             // resident high-water mark
	BalloonReclaimed int64             // clean bytes freed via balloon inflate
	Evicted          int64             // cold snapshot artifact bytes dropped
	Deflated         int64             // ballooned bytes returned after pressure cleared
	Kills            int               // graded OOM kills (restarted via restore)
	Aborts           int               // OOM crash-loop kills (cold restart, no ladder)
	KilledBytes      int64             // resident bytes reclaimed by kills and aborts
	ReclaimStalls    int               // ticks lost to hostmem/reclaim-stall
	DeflateFails     int               // balloon/deflate-fail fires
	PressureSome     simclock.Duration // virtual time at PSI level some
	PressureFull     simclock.Duration // virtual time at PSI level full
	Transitions      int               // pressure level changes
}

// AttachMemory wires a memory plane into the fleet before Run. The
// engine calls p.Tick every tick (0 = the probe interval), consults
// p.ShedAdmission on every arrival, and stores p.Finish in Result.Mem.
func (f *Fleet) AttachMemory(p MemoryPlane, tick simclock.Duration) {
	if tick <= 0 {
		tick = f.cfg.ProbeInterval
	}
	f.mem = p
	f.memEvery = tick
}

// memTick drives the plane and reschedules itself while work remains.
func (f *Fleet) memTick(now simclock.Time) {
	f.mem.Tick(f, now)
	if f.resolved < f.cfg.Requests {
		f.schedule(now.Add(f.memEvery), f.memTick)
	}
}

// OOMKill abruptly removes the newest active backend — the LIFO victim,
// mirroring the scale-down order: the latest clone is the lowest-priority
// pool member and killing it protects the origin VM. The victim's
// release hook fires immediately (its private pages return to the host);
// requests already in flight on it resolve as dispatched, like
// connections on a socket the kernel tears down late. If l is non-nil a
// replacement is launched after l.Ready — restore-from-snapshot for a
// ladder pool, cold boot for a crash-looping comparator. It returns the
// victim, or nil when no active backend remains to kill.
func (f *Fleet) OOMKill(l *Launch, now simclock.Time) *Backend {
	b := f.newestActive()
	if b == nil {
		return nil
	}
	b.healthy = false
	if f.tr != nil {
		// The instant lands before retirement so the victim's flight dump
		// includes its own death mark.
		f.tr.Instant("fleet", f.btrack(b), "oom-kill", now)
		f.tr.Trip(f.btrack(b), "oom-kill", now)
	}
	f.retire(b, now)
	if l != nil {
		f.scaleSeq++
		seq := f.scaleSeq
		lv := *l
		f.schedule(now.Add(lv.Ready), func(t simclock.Time) {
			nb := NewBackend(fmt.Sprintf("oom%d", seq), launchTimeline(lv))
			nb.onRelease = lv.OnRetired
			f.admit(nb, t)
			f.observeProvision(nb, now, t, lv.Restored, "oom-replace")
			if lv.Restored {
				f.res.Restores++
			} else {
				f.res.ColdBoots++
			}
			f.notePool(t)
		})
	}
	return b
}
