package fleet

import (
	"strconv"

	"lupine/internal/simclock"
	"lupine/internal/telemetry"
)

// Telemetry wiring for the fleet plane. Observe attaches before Run;
// every hook on the dispatch hot path guards with `f.tr != nil`, so a
// fleet without telemetry pays nothing (no argument-slice allocations,
// pinned by TestFleetDisabledTelemetryAllocs).

// Observe attaches the telemetry plane: spans for dispatches, retries
// and provisioning, instant events for admission/health/breaker/OOM
// edges (cat "fleet"), and per-pool counters and a latency histogram in
// reg. Backends already admitted are retro-attached, so Observe can run
// right after New. Either tr or reg may be nil.
func (f *Fleet) Observe(tr *telemetry.Tracer, reg *telemetry.Registry, track string) {
	if f == nil || (tr == nil && reg == nil) {
		return
	}
	f.tr = tr
	f.trTrack = track
	f.netTrack = track + "/net"
	f.net.Observe(tr, f.netTrack)
	f.mOK = reg.Counter(track + ".served")
	f.mShed = reg.Counter(track + ".shed")
	f.mFailed = reg.Counter(track + ".failed")
	f.mRetries = reg.Counter(track + ".retries")
	f.mBreakerOpens = reg.Counter(track + ".breaker-opens")
	f.hLatency = reg.Histogram(track + ".latency")
	for _, b := range f.backends {
		f.observeBackend(b, b.start)
	}
}

// btrack is a backend's display lane under the pool's track.
func (f *Fleet) btrack(b *Backend) string { return f.trTrack + "/" + b.Name }

// observeBackend marks admission and hooks the breaker's transition
// stream into the event log.
func (f *Fleet) observeBackend(b *Backend, now simclock.Time) {
	if f.tr == nil {
		return
	}
	lane := f.btrack(b)
	b.breaker.OnTransition = func(t BreakerTransition) {
		if t.To == BreakerOpen {
			f.mBreakerOpens.Inc()
		}
		f.tr.Instant("fleet", lane, "breaker:"+t.To.String(), t.At,
			telemetry.A("cause", t.Cause))
	}
	f.tr.Instant("fleet", lane, "admit", now)
}

// observeProvision records the provisioning span of an autoscaler- or
// OOM-replacement-launched backend.
func (f *Fleet) observeProvision(b *Backend, from, to simclock.Time, restored bool, why string) {
	if f.tr == nil {
		return
	}
	f.tr.Span("fleet", f.btrack(b), "provision", from, to,
		telemetry.A("restored", strconv.FormatBool(restored)),
		telemetry.A("why", why))
}
