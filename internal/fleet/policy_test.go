package fleet

import (
	"fmt"
	"sort"
	"testing"
)

// ringOwnerAt resolves a client key to its ring owner the way pickHash
// starts its walk: first vnode clockwise of the hashed key.
func ringOwnerAt(f *Fleet, client uint64) *Backend {
	n := len(f.ring)
	if n == 0 {
		return nil
	}
	key := mix64(client ^ 0x9E3779B97F4A7C15)
	i := sort.Search(n, func(j int) bool { return f.ring[j].hash >= key }) % n
	return f.ring[i].b
}

func ringPool(n int) (*Fleet, []*Backend) {
	f := &Fleet{}
	var pool []*Backend
	for i := 0; i < n; i++ {
		b := NewBackend(fmt.Sprintf("vm%d", i), AlwaysUp())
		pool = append(pool, b)
		f.ringInsert(b)
	}
	return f, pool
}

func checkRingSorted(t *testing.T, f *Fleet) {
	t.Helper()
	for i := 1; i < len(f.ring); i++ {
		if ringLess(f.ring[i], f.ring[i-1]) {
			t.Fatalf("ring out of order at %d: %x/%s before %x/%s", i,
				f.ring[i-1].hash, f.ring[i-1].b.Name, f.ring[i].hash, f.ring[i].b.Name)
		}
	}
}

// TestHashRingChurnBoundedMovement is the consistent-hashing contract:
// removing one backend mid-run moves ONLY the keys that backend owned
// (they shed to clockwise neighbors); every other key keeps its owner.
// Re-inserting it restores the original mapping exactly.
func TestHashRingChurnBoundedMovement(t *testing.T) {
	const pool, keys = 8, 10000
	f, backends := ringPool(pool)
	checkRingSorted(t, f)
	if got, want := len(f.ring), pool*ringVnodes; got != want {
		t.Fatalf("ring has %d points, want %d", got, want)
	}

	before := make([]*Backend, keys)
	for k := range before {
		before[k] = ringOwnerAt(f, uint64(k))
	}
	victim := backends[3]
	owned := 0
	for _, b := range before {
		if b == victim {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("victim owns no keys; the test proves nothing")
	}

	f.ringRemove(victim)
	checkRingSorted(t, f)
	if got, want := len(f.ring), (pool-1)*ringVnodes; got != want {
		t.Fatalf("after removal ring has %d points, want %d", got, want)
	}
	moved := 0
	for k := 0; k < keys; k++ {
		after := ringOwnerAt(f, uint64(k))
		if after == victim {
			t.Fatalf("key %d still resolves to the removed backend", k)
		}
		if before[k] != victim && after != before[k] {
			t.Errorf("key %d moved from surviving %s to %s — removal must only move the victim's keys",
				k, before[k].Name, after.Name)
		}
		if before[k] == victim {
			moved++
		}
	}
	if moved != owned {
		t.Errorf("moved %d keys, want exactly the victim's %d", moved, owned)
	}

	// Membership is history-independent: putting the backend back
	// restores the exact original mapping.
	f.ringInsert(victim)
	checkRingSorted(t, f)
	for k := 0; k < keys; k++ {
		if got := ringOwnerAt(f, uint64(k)); got != before[k] {
			t.Fatalf("key %d owned by %s after re-insert, originally %s", k, got.Name, before[k].Name)
		}
	}
}

// TestHashRingIncrementalMatchesRebuild pins the incremental ring to
// the reference construction: inserting any subset in any order yields
// the same sorted ring a from-scratch build does.
func TestHashRingIncrementalMatchesRebuild(t *testing.T) {
	f, backends := ringPool(6)
	// Reference: rebuild from scratch in a fresh fleet, reverse order.
	ref := &Fleet{}
	for i := len(backends) - 1; i >= 0; i-- {
		ref.ringInsert(backends[i])
	}
	if len(ref.ring) != len(f.ring) {
		t.Fatalf("ring lengths differ: %d vs %d", len(ref.ring), len(f.ring))
	}
	for i := range ref.ring {
		if ref.ring[i] != f.ring[i] {
			t.Fatalf("ring point %d differs: %x/%s vs %x/%s", i,
				ref.ring[i].hash, ref.ring[i].b.Name, f.ring[i].hash, f.ring[i].b.Name)
		}
	}
}
