package fleet

import (
	"fmt"

	"lupine/internal/simclock"
)

// BreakerState is the classic three-state circuit breaker.
type BreakerState int

// Breaker states. Closed passes traffic and counts consecutive failures;
// Open rejects traffic until a cool-down elapses; HalfOpen admits a
// single trial at a time and closes after enough successes (trial
// requests or health-probe successes both count).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state the way the transition log prints it.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig tunes one backend's breaker.
type BreakerConfig struct {
	FailThreshold     int               // consecutive failures that trip Closed -> Open
	OpenFor           simclock.Duration // cool-down before Open -> HalfOpen
	HalfOpenSuccesses int               // consecutive successes that close a half-open breaker
}

// BreakerTransition is one edge of the state machine on the fleet
// timeline; the sequence of transitions for a fixed seed is the
// deterministic-replay contract the tests pin down.
type BreakerTransition struct {
	At       simclock.Time
	From, To BreakerState
	Cause    string
}

// String renders the transition for timeline diffs.
func (t BreakerTransition) String() string {
	return fmt.Sprintf("%v %v->%v (%s)", t.At, t.From, t.To, t.Cause)
}

// Breaker is a per-backend circuit breaker driven by data-plane request
// outcomes and control-plane health probes. It is single-threaded like
// the rest of the simulation substrate.
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	fails    int // consecutive failures while closed
	oks      int // consecutive successes while half-open
	reopenAt simclock.Time

	// Transitions records every state change in order.
	Transitions []BreakerTransition

	// OnTransition, when set, observes every state change as it is
	// recorded; the telemetry plane hooks it to emit instant events.
	OnTransition func(BreakerTransition)
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker { return &Breaker{cfg: cfg} }

// State reports the current state without side effects.
func (b *Breaker) State() BreakerState { return b.state }

// ReopenAt reports when an open breaker becomes eligible for half-open.
func (b *Breaker) ReopenAt() simclock.Time { return b.reopenAt }

func (b *Breaker) transition(now simclock.Time, to BreakerState, cause string) {
	t := BreakerTransition{At: now, From: b.state, To: to, Cause: cause}
	b.Transitions = append(b.Transitions, t)
	b.state = to
	b.fails = 0
	b.oks = 0
	if b.OnTransition != nil {
		b.OnTransition(t)
	}
}

// Allow reports whether a request may be sent now. An open breaker whose
// cool-down has elapsed moves to half-open as a side effect, so the first
// caller after the window becomes the trial.
func (b *Breaker) Allow(now simclock.Time) bool {
	if b.state == BreakerOpen && now >= b.reopenAt {
		b.transition(now, BreakerHalfOpen, "cool-down elapsed")
	}
	return b.state != BreakerOpen
}

// Success records a successful request.
func (b *Breaker) Success(now simclock.Time) { b.success(now, "trial successes") }

// ProbeSuccess records a successful health probe. Probes close a
// half-open breaker just like trial requests, so a backend with no
// traffic routed at it can still rejoin the pool.
func (b *Breaker) ProbeSuccess(now simclock.Time) { b.success(now, "probe successes") }

func (b *Breaker) success(now simclock.Time, cause string) {
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.oks++
		if b.oks >= b.cfg.HalfOpenSuccesses {
			b.transition(now, BreakerClosed, cause)
		}
	}
}

// Failure records a failed request: enough consecutive failures trip a
// closed breaker, and any failure re-opens a half-open one.
func (b *Breaker) Failure(now simclock.Time) {
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailThreshold {
			b.reopenAt = now.Add(b.cfg.OpenFor)
			b.transition(now, BreakerOpen, "consecutive failures")
		}
	case BreakerHalfOpen:
		b.reopenAt = now.Add(b.cfg.OpenFor)
		b.transition(now, BreakerOpen, "trial failed")
	}
}

// ProbeFailure records a failed health probe. A failed probe dooms a
// half-open trial window but does not count against a closed breaker:
// liveness is the health checker's verdict, the breaker's job is the
// data plane.
func (b *Breaker) ProbeFailure(now simclock.Time) {
	if b.state == BreakerHalfOpen {
		b.reopenAt = now.Add(b.cfg.OpenFor)
		b.transition(now, BreakerOpen, "probe failed")
	}
}

// ForceOpen trips the breaker open from any state as a deliberate
// control-plane action — the containment ladder's quarantine, not a
// data-plane verdict. The cool-down still applies, but a quarantined
// backend is also draining, so it never re-enters rotation through a
// half-open trial: Allow is only consulted for dispatchable backends.
func (b *Breaker) ForceOpen(now simclock.Time, cause string) {
	b.reopenAt = now.Add(b.cfg.OpenFor)
	if b.state != BreakerOpen {
		b.transition(now, BreakerOpen, cause)
	}
}
