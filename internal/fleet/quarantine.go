package fleet

import (
	"lupine/internal/simclock"
)

// Quarantine is the containment ladder's cell-level rung: take b out of
// rotation as a *deliberate* security action. It force-opens the
// breaker (counted in BreakerOpens and the distinct Quarantines
// counter, never in FalseTrips — the wire did not lie, the operator
// acted), marks the backend draining so the dispatcher and the ring
// skip it, and cuts its NIC's egress at the switch so lateral probes —
// and any poisoned in-flight responses — die on the wire. The caller
// retires the backend once its replacement lands.
//
// floor is the fewest structurally active backends the cell may keep:
// when removing b would cross it, Quarantine refuses (returns false)
// and the caller must repave first, quarantining on the replacement's
// landing. A backend already draining or retired is already out of
// rotation: Quarantine reports true without recounting.
func (f *Fleet) Quarantine(b *Backend, floor int, now simclock.Time) bool {
	if !b.admitted || b.retired || b.draining {
		return true
	}
	if floor > 0 && f.activeCount() <= floor {
		return false
	}
	before := b.breaker.State()
	b.breaker.ForceOpen(now, "quarantine")
	if before != BreakerOpen {
		f.res.BreakerOpens++
	}
	f.res.Quarantines++
	b.draining = true
	f.ringRemove(b)
	if b.node != nil {
		b.node.SetEgressCut(true)
	}
	f.noteActive()
	if f.tr != nil {
		f.tr.Instant("fleet", f.btrack(b), "quarantine", now)
	}
	return true
}
