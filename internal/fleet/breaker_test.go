package fleet

import (
	"testing"

	"lupine/internal/simclock"
)

const ms = simclock.Millisecond

func tcfg() BreakerConfig {
	return BreakerConfig{FailThreshold: 3, OpenFor: 5 * ms, HalfOpenSuccesses: 2}
}

func at(d simclock.Duration) simclock.Time { return simclock.Time(d) }

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b := NewBreaker(tcfg())
	b.Failure(at(1 * ms))
	b.Success(at(2 * ms)) // success resets the consecutive count
	b.Failure(at(3 * ms))
	b.Failure(at(4 * ms))
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after 2 consecutive failures, want closed", b.State())
	}
	b.Failure(at(5 * ms))
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after 3 consecutive failures, want open", b.State())
	}
	if b.ReopenAt() != at(10*ms) {
		t.Errorf("reopenAt = %v, want %v", b.ReopenAt(), at(10*ms))
	}
	if b.Allow(at(6 * ms)) {
		t.Error("open breaker allowed a request before cool-down")
	}
}

func TestBreakerHalfOpenLifecycle(t *testing.T) {
	b := NewBreaker(tcfg())
	for i := 0; i < 3; i++ {
		b.Failure(at(1 * ms))
	}
	// Cool-down elapses: the next Allow flips to half-open and admits.
	if !b.Allow(at(7 * ms)) {
		t.Fatal("breaker did not admit after cool-down")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// One trial success plus one probe success close it.
	b.Success(at(8 * ms))
	b.ProbeSuccess(at(9 * ms))
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after %d successes, want closed", b.State(), tcfg().HalfOpenSuccesses)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	for _, probe := range []bool{false, true} {
		b := NewBreaker(tcfg())
		for i := 0; i < 3; i++ {
			b.Failure(at(1 * ms))
		}
		b.Allow(at(7 * ms))
		if probe {
			b.ProbeFailure(at(8 * ms))
		} else {
			b.Failure(at(8 * ms))
		}
		if b.State() != BreakerOpen {
			t.Errorf("probe=%v: state = %v after half-open failure, want open", probe, b.State())
		}
		if b.ReopenAt() != at(13*ms) {
			t.Errorf("probe=%v: reopenAt = %v, want %v", probe, b.ReopenAt(), at(13*ms))
		}
	}
}

func TestBreakerProbeFailureIgnoredWhileClosed(t *testing.T) {
	b := NewBreaker(tcfg())
	for i := 0; i < 10; i++ {
		b.ProbeFailure(at(simclock.Duration(i) * ms))
	}
	if b.State() != BreakerClosed {
		t.Errorf("state = %v, want closed: probe failures are the health checker's business", b.State())
	}
}

// TestBreakerReplayDeterministic is the deterministic-replay contract: a
// table of seeded fleet scenarios, each run twice; identical seeds must
// yield identical open/half-open/close timelines on every backend.
func TestBreakerReplayDeterministic(t *testing.T) {
	flaky := Timeline{
		Up:      []Interval{{From: 0, To: at(20 * ms)}, {From: at(30 * ms), To: at(45 * ms)}},
		End:     at(45 * ms),
		UpAfter: true,
	}
	cases := []struct {
		name string
		seed uint64
		tls  []Timeline
	}{
		{"steady pool, jitter only", 1, []Timeline{AlwaysUp(), AlwaysUp(), flaky}},
		{"two flaky backends", 7, []Timeline{flaky, AlwaysUp(), flaky}},
		{"same storm, other seed", 99, []Timeline{flaky, AlwaysUp(), flaky}},
		{"dead backend", 42, []Timeline{NeverUp(), AlwaysUp(), AlwaysUp()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() [][]string {
				cfg := DefaultConfig()
				cfg.Seed = tc.seed
				var backends []*Backend
				for i, tl := range tc.tls {
					backends = append(backends, NewBackend(string(rune('a'+i)), tl))
				}
				f := New(cfg, backends, nil, nil)
				f.Run()
				var out [][]string
				for _, b := range f.Backends() {
					var lines []string
					for _, tr := range b.Breaker().Transitions {
						lines = append(lines, tr.String())
					}
					out = append(out, lines)
				}
				return out
			}
			first, second := run(), run()
			if len(first) != len(second) {
				t.Fatalf("backend count differs across replays: %d vs %d", len(first), len(second))
			}
			for i := range first {
				if len(first[i]) != len(second[i]) {
					t.Fatalf("backend %d: %d vs %d transitions", i, len(first[i]), len(second[i]))
				}
				for j := range first[i] {
					if first[i][j] != second[i][j] {
						t.Errorf("backend %d transition %d differs:\n  %s\n  %s", i, j, first[i][j], second[i][j])
					}
				}
			}
			// The flaky timelines must actually exercise the breaker,
			// or the replay assertion is vacuous.
			total := 0
			for _, lines := range first {
				total += len(lines)
			}
			if tc.tls[0].End != 0 || tc.tls[2].End != 0 {
				if total == 0 {
					t.Error("no breaker transitions recorded under a flaky pool")
				}
			}
		})
	}
}
