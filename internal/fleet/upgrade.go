package fleet

import (
	"fmt"

	"lupine/internal/simclock"
)

// UpgradePlan orchestrates a rolling kernel upgrade across the pool:
// boot surge capacity first, then for each original backend in turn
// drain it, take it out, rebuild its kernel, boot the replacement and
// re-admit it; finally drain the surge instance away. Because the surge
// backend joins before the first drain begins, the structurally active
// count never falls below the original pool size — the N-1/N availability
// floor holds by construction, and Result.MinActive proves it per run.
type UpgradePlan struct {
	Start        simclock.Time     // when the rollout begins
	BootTime     simclock.Duration // boot latency of surge and replacement instances
	DrainTimeout simclock.Duration // max wait for in-flight requests before forcing removal

	// RebuildTime prices rebuilding backend i's kernel image — the
	// experiment wires this to core.NewKernelCache, so the first rebuild
	// pays a full build and subsequent identical configurations are
	// cache hits. Nil means free.
	RebuildTime func(i int) simclock.Duration

	// Replacement supplies the service timeline of rebuilt backend i;
	// nil means AlwaysUp (the upgrade fixed the faults).
	Replacement func(i int) Timeline

	// Surge is the temporary extra instance's timeline.
	Surge Timeline
}

func (p *UpgradePlan) rebuildTime(i int) simclock.Duration {
	if p.RebuildTime == nil {
		return 0
	}
	return p.RebuildTime(i)
}

func (p *UpgradePlan) replacement(i int) Timeline {
	if p.Replacement == nil {
		return AlwaysUp()
	}
	return p.Replacement(i)
}

// startUpgrade boots the surge instance; the rollout proper begins only
// once it is in rotation, so capacity never dips first.
func (f *Fleet) startUpgrade(now simclock.Time) {
	targets := append([]*Backend(nil), f.backends...)
	surge := NewBackend("surge", f.plan.Surge)
	f.schedule(now.Add(f.plan.BootTime), func(t simclock.Time) {
		f.admit(surge, t)
		f.upgradeStep(targets, surge, 0, t)
	})
}

// upgradeStep drains and replaces targets[i], then recurses; past the
// last target it drains the surge instance and ends the rollout.
func (f *Fleet) upgradeStep(targets []*Backend, surge *Backend, i int, now simclock.Time) {
	if i >= len(targets) {
		f.drain(surge, f.plan.DrainTimeout, now, func(simclock.Time) { f.upgraded = true })
		return
	}
	old := targets[i]
	f.drain(old, f.plan.DrainTimeout, now, func(t simclock.Time) {
		delay := f.plan.rebuildTime(i) + f.plan.BootTime
		f.schedule(t.Add(delay), func(t2 simclock.Time) {
			f.admit(NewBackend(fmt.Sprintf("%s+v2", old.Name), f.plan.replacement(i)), t2)
			f.upgradeStep(targets, surge, i+1, t2)
		})
	})
}

// drain takes b out of the dispatch rotation, waits for its in-flight
// requests (bounded by timeout), then retires it and runs done (which
// may be nil: autoscaler scale-downs need no continuation).
func (f *Fleet) drain(b *Backend, timeout simclock.Duration, now simclock.Time, done func(now simclock.Time)) {
	b.draining = true
	b.onRetired = done
	f.ringRemove(b)
	if f.tr != nil {
		f.tr.Instant("fleet", f.btrack(b), "drain", now)
	}
	f.noteActive()
	if b.inflight == 0 {
		f.retire(b, now)
		return
	}
	f.schedule(now.Add(timeout), func(t simclock.Time) {
		if !b.retired {
			f.retire(b, t) // drain timeout: abandon stragglers
		}
	})
}

// maybeDrained retires a draining backend the moment its last in-flight
// request resolves.
func (f *Fleet) maybeDrained(b *Backend, now simclock.Time) {
	if b.draining && !b.retired && b.inflight == 0 {
		f.retire(b, now)
	}
}

// retire removes b permanently and fires its continuation once.
func (f *Fleet) retire(b *Backend, now simclock.Time) {
	if b.retired {
		return
	}
	b.retired = true
	f.ringRemove(b)
	if f.tr != nil {
		f.tr.Instant("fleet", f.btrack(b), "retire", now)
	}
	f.noteActive()
	if cb := b.onRelease; cb != nil {
		b.onRelease = nil
		cb(now)
	}
	if cb := b.onRetired; cb != nil {
		b.onRetired = nil
		cb(now)
	}
}
