package fleet

import (
	"fmt"
	"testing"

	"lupine/internal/fabric"
	"lupine/internal/faults"
	"lupine/internal/simclock"
)

// Breaker behavior through the fabric: these tests cut the wire, not
// the backend. A one-sided partition into backend "a" (node 2 — the
// balancer is node 1) eats the balancer's SYNs, probes and requests
// while a's own egress still flows, so every breaker verdict below is
// the wire lying about a live VM.

// partitionedFleet builds a two-backend pool with a partition INTO "a"
// over [from, to), health checking effectively disabled (ProbeFailAfter
// out of reach) so the breaker — not the health view — is the only
// thing standing between the balancer and the partitioned backend.
func partitionedFleet(t *testing.T, from, to simclock.Time) *Fleet {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ProbeFailAfter = 1 << 20
	inj, err := faults.New(faults.Plan{
		Seed: 7,
		Rules: []faults.Rule{
			{Site: fabric.SitePartition, From: from, To: to, Prob: 1, Param: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, []*Backend{
		NewBackend("a", AlwaysUp()),
		NewBackend("b", AlwaysUp()),
	}, nil, inj)
}

// TestOneSidedPartitionOpensBreaker: during the partition the breaker
// must open off dispatch timeouts (counted as a false trip — the VM is
// alive), and while it cycles through half-open trials the lost probes
// must re-open it with a "probe failed" verdict. After heal, the
// half-open window must close again and the backend must serve.
func TestOneSidedPartitionOpensBreaker(t *testing.T) {
	const ms10 = simclock.Time(10 * simclock.Millisecond)
	const ms45 = simclock.Time(45 * simclock.Millisecond)
	f := partitionedFleet(t, ms10, ms45)
	res := f.Run()
	checkConservation(t, res)

	a := f.Backends()[0]
	tr := a.Breaker().Transitions
	if len(tr) == 0 {
		t.Fatal("partition into a live backend produced no breaker transitions")
	}
	var opens, probeFails int
	for _, x := range tr {
		if x.To != BreakerOpen {
			continue
		}
		opens++
		if x.At < ms10 || x.At >= ms45+ms10 {
			t.Errorf("breaker opened at %v, outside the partition window [%v, %v)", x.At, ms10, ms45)
		}
		if x.Cause == "probe failed" {
			probeFails++
		}
	}
	if opens == 0 {
		t.Error("breaker never opened during the one-sided partition")
	}
	if probeFails == 0 {
		t.Error("no half-open trial was doomed by a lost probe ('probe failed' cause)")
	}
	if res.FalseTrips == 0 {
		t.Error("opening against a live backend must count as a false trip")
	}
	if res.FalseTrips > res.BreakerOpens {
		t.Errorf("false trips %d > breaker opens %d", res.FalseTrips, res.BreakerOpens)
	}

	// Heal: the last transition must be the half-open window closing, and
	// the healed backend must have served traffic on both sides of the
	// partition.
	last := tr[len(tr)-1]
	if last.To != BreakerClosed {
		t.Errorf("final breaker state %v, want closed after heal (transitions: %v)", last.To, tr)
	}
	if last.At < ms45 {
		t.Errorf("breaker closed at %v, before the partition healed at %v", last.At, ms45)
	}
	if a.Breaker().State() != BreakerClosed {
		t.Errorf("post-run breaker state %v, want closed", a.Breaker().State())
	}
	if a.Served() == 0 {
		t.Error("partitioned backend never served despite being alive and healed")
	}
}

// TestPartitionBreakerCycleDeterministic: the full transition timeline
// of the partition-open-probe-doom-heal-close cycle replays bit-for-bit
// under a fixed seed — timestamps, causes and order included.
func TestPartitionBreakerCycleDeterministic(t *testing.T) {
	run := func() (string, Result) {
		const from = simclock.Time(10 * simclock.Millisecond)
		const to = simclock.Time(45 * simclock.Millisecond)
		f := partitionedFleet(t, from, to)
		res := f.Run()
		var s string
		for _, b := range f.Backends() {
			s += b.Name + ":" + fmt.Sprint(b.Breaker().Transitions) + "\n"
		}
		return s, res
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 {
		t.Errorf("same seed, different breaker timelines:\n%s---\n%s", s1, s2)
	}
	if fmt.Sprintf("%+v", r1) != fmt.Sprintf("%+v", r2) {
		t.Error("same seed, different results")
	}
}
