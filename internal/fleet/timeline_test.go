package fleet

import (
	"testing"

	"lupine/internal/simclock"
)

// TestTimelineEdgeWindows pins the half-open interval semantics: a span
// [From, To) serves at From and not at To, End hands over to UpAfter
// exactly at End, and gaps between spans are down.
func TestTimelineEdgeWindows(t *testing.T) {
	tl := Timeline{
		Up: []Interval{
			{From: simclock.Time(2 * ms), To: simclock.Time(5 * ms)},
			{From: simclock.Time(8 * ms), To: simclock.Time(10 * ms)},
		},
		End:     simclock.Time(10 * ms),
		UpAfter: true,
	}
	cases := []struct {
		at   simclock.Duration
		want bool
	}{
		{0, false},              // before the first span
		{2 * ms, true},          // inclusive left edge
		{5*ms - 1, true},        // last instant of the span
		{5 * ms, false},         // exclusive right edge
		{6 * ms, false},         // gap between spans
		{8 * ms, true},          // second span opens
		{10*ms - 1, true},       // last instant before End
		{10 * ms, true},         // End itself: UpAfter takes over
		{simclock.Second, true}, // far future: still UpAfter
	}
	for _, c := range cases {
		if got := tl.UpAt(simclock.Time(c.at)); got != c.want {
			t.Errorf("UpAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

// TestTimelineEndWithoutRecovery: when the record ends un-recovered, the
// service is down from End on even if the final span touched it.
func TestTimelineEndWithoutRecovery(t *testing.T) {
	tl := Timeline{
		Up:  []Interval{{From: 0, To: simclock.Time(4 * ms)}},
		End: simclock.Time(4 * ms),
	}
	if !tl.UpAt(simclock.Time(3 * ms)) {
		t.Error("down inside the only span")
	}
	for _, at := range []simclock.Duration{4 * ms, 5 * ms, simclock.Second} {
		if tl.UpAt(simclock.Time(at)) {
			t.Errorf("up at %v past an un-recovered End", at)
		}
	}
}

// TestTimelineDegenerateShapes is table-driven over the degenerate
// records FromReport can legitimately produce: a zero-length ready span
// (a VM that died the instant it came up), a recovered record with no
// ready span at all (UpAfter with empty Up), and probes landing exactly
// at End for both recovery outcomes.
func TestTimelineDegenerateShapes(t *testing.T) {
	cases := []struct {
		name string
		tl   Timeline
		at   simclock.Time
		want bool
	}{
		{"zero-length span is never up at its own instant",
			Timeline{Up: []Interval{{From: simclock.Time(2 * ms), To: simclock.Time(2 * ms)}}, End: simclock.Time(5 * ms)},
			simclock.Time(2 * ms), false},
		{"zero-length span leaves neighbors down",
			Timeline{Up: []Interval{{From: simclock.Time(2 * ms), To: simclock.Time(2 * ms)}}, End: simclock.Time(5 * ms)},
			simclock.Time(2*ms - 1), false},
		{"UpAfter with empty Up is down inside the record",
			Timeline{End: simclock.Time(5 * ms), UpAfter: true},
			simclock.Time(3 * ms), false},
		{"UpAfter with empty Up serves from End on",
			Timeline{End: simclock.Time(5 * ms), UpAfter: true},
			simclock.Time(5 * ms), true},
		{"probe exactly at End: recovered record serves",
			Timeline{Up: []Interval{{From: 0, To: simclock.Time(5 * ms)}}, End: simclock.Time(5 * ms), UpAfter: true},
			simclock.Time(5 * ms), true},
		{"probe exactly at End: un-recovered record is down",
			Timeline{Up: []Interval{{From: 0, To: simclock.Time(5 * ms)}}, End: simclock.Time(5 * ms)},
			simclock.Time(5 * ms), false},
		{"zero End record with UpAfter serves at 0",
			Timeline{UpAfter: true},
			0, true},
		{"zero End record without UpAfter is down at 0",
			Timeline{},
			0, false},
	}
	for _, c := range cases {
		if got := c.tl.UpAt(c.at); got != c.want {
			t.Errorf("%s: UpAt(%v) = %v, want %v", c.name, c.at, got, c.want)
		}
	}
}

// TestTimelineConstants: AlwaysUp serves at every instant including 0,
// NeverUp at none.
func TestTimelineConstants(t *testing.T) {
	for _, at := range []simclock.Time{0, simclock.Time(ms), simclock.Time(simclock.Second)} {
		if !AlwaysUp().UpAt(at) {
			t.Errorf("AlwaysUp down at %v", at)
		}
		if NeverUp().UpAt(at) {
			t.Errorf("NeverUp up at %v", at)
		}
	}
}

// TestBackendAliveAtOffset: a backend's timeline is relative to its
// admission instant, and an un-admitted backend is never alive.
func TestBackendAliveAtOffset(t *testing.T) {
	tl := Timeline{
		Up:      []Interval{{From: simclock.Time(1 * ms), To: simclock.Time(3 * ms)}},
		End:     simclock.Time(3 * ms),
		UpAfter: false,
	}
	b := NewBackend("late", tl)
	if b.aliveAt(simclock.Time(2 * ms)) {
		t.Error("alive before admission")
	}
	b.start = simclock.Time(10 * ms)
	b.admitted = true
	cases := []struct {
		at   simclock.Duration
		want bool
	}{
		{9 * ms, false},  // before the backend joined
		{10 * ms, false}, // joined, local time 0: span not open yet
		{11 * ms, true},  // local 1ms: span open (inclusive edge)
		{13 * ms, false}, // local 3ms: exclusive right edge
	}
	for _, c := range cases {
		if got := b.aliveAt(simclock.Time(c.at)); got != c.want {
			t.Errorf("aliveAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}
