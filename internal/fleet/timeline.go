package fleet

import (
	"lupine/internal/fabric"
	"lupine/internal/simclock"
	"lupine/internal/vmm"
)

// Interval is a half-open span [From, To) of backend-local virtual time.
type Interval struct {
	From, To simclock.Time
}

// Timeline is a backend's ground-truth service record: when the
// supervised VM was actually up, relative to the instant the backend
// joined the pool. The fleet front-end never reads it directly for
// routing — health checks and breakers have to discover outages the way
// a real load balancer does — but dispatches and probes consult it as
// the wire would.
type Timeline struct {
	Up      []Interval    // ready spans, in order
	End     simclock.Time // end of the supervised record
	UpAfter bool          // state after End: a recovered service keeps serving

	// Stats carries the supervisor's counter view (restarts, per-outcome
	// totals), the one source of truth the fleet reports aggregate.
	Stats vmm.Stats
}

// FromReport derives a timeline from a supervised run: every ready
// attempt contributes its post-ready span, and a recovered service stays
// up past the end of the record.
func FromReport(rep vmm.SupervisorReport) Timeline {
	tl := Timeline{End: rep.End, UpAfter: rep.Recovered, Stats: rep.Stats()}
	for _, a := range rep.Attempts {
		if a.Ready {
			tl.Up = append(tl.Up, Interval{From: a.Start.Add(a.ReadyAfter), To: a.Start.Add(a.Ran)})
		}
	}
	return tl
}

// AlwaysUp is the timeline of a backend that never fails — freshly
// upgraded instances and test fixtures.
func AlwaysUp() Timeline { return Timeline{UpAfter: true} }

// NeverUp is the timeline of a backend that never comes up.
func NeverUp() Timeline { return Timeline{} }

// UpAt reports whether the service was serving at backend-local time t.
func (tl Timeline) UpAt(t simclock.Time) bool {
	if t >= tl.End {
		return tl.UpAfter
	}
	for _, iv := range tl.Up {
		if t >= iv.From && t < iv.To {
			return true
		}
	}
	return false
}

// Backend is one pool member: a ground-truth timeline plus the
// front-end's view of it (heartbeat health, breaker, in-flight load) and
// its lifecycle state under rolling upgrades.
type Backend struct {
	Name     string
	Timeline Timeline

	start    simclock.Time // fleet time when admitted; timeline origin
	admitted bool
	draining bool // no new dispatches; in-flight requests finish
	retired  bool

	breaker    *Breaker
	healthy    bool // heartbeat verdict; optimistic until probes disagree
	probeFails int
	probeOKs   int

	// The backend's presence on the fabric: its NIC and the listener it
	// serves on, both attached at admission.
	node *fabric.Node
	lst  *fabric.Listener

	inflight int // balancer-side outstanding connections (queued + serving)
	serving  int // server-side accepted connections in service
	served   int
	failed   int

	// onRetired, when set by the upgrade orchestrator, runs once when
	// this backend leaves the pool for good.
	onRetired func(now simclock.Time)

	// onRelease is the resource-release hook (snapshot clone pages,
	// accountant charges), also fired once at retirement. It is a
	// separate slot because drain() repurposes onRetired as its
	// continuation, which would silently drop a release callback.
	onRelease func(now simclock.Time)

	// liveGate, when set, is ANDed into aliveAt: the region plane kills
	// whole hosts and regions through it without rewriting per-VM
	// timelines. Probes and dispatches discover the death at the wire.
	liveGate func(now simclock.Time) bool
}

// NewBackend wraps a timeline as a pool member. The breaker is attached
// at admission time by the engine (it needs the fleet's config).
func NewBackend(name string, tl Timeline) *Backend {
	return &Backend{Name: name, Timeline: tl}
}

// Breaker exposes the backend's breaker (nil before admission), so tests
// and tables can read the transition timeline.
func (b *Backend) Breaker() *Breaker { return b.breaker }

// Node exposes the backend's NIC on the fabric (nil before admission).
// Containment planes register it as an attack target and cut its egress
// on quarantine.
func (b *Backend) Node() *fabric.Node { return b.node }

// SetOnRelease registers fn to run once when the backend leaves the pool
// for good, however it leaves (drain, OOM kill, upgrade). Pools built
// over snapshot clones release the clone's private pages here.
func (b *Backend) SetOnRelease(fn func(now simclock.Time)) { b.onRelease = fn }

// Served and Failed report per-backend request outcomes.
func (b *Backend) Served() int { return b.served }

// Failed reports requests that failed on this backend.
func (b *Backend) Failed() int { return b.failed }

// SetLiveGate installs an extra liveness condition ANDed into aliveAt
// (fleet time). A backend whose gate reports false is dead on the wire
// regardless of its own timeline — how a host crash or region blackout
// kills every VM it was carrying at once.
func (b *Backend) SetLiveGate(fn func(now simclock.Time) bool) { b.liveGate = fn }

// aliveAt is the ground truth: was the service up at fleet time t?
func (b *Backend) aliveAt(t simclock.Time) bool {
	if !b.admitted || t < b.start {
		return false
	}
	if b.liveGate != nil && !b.liveGate(t) {
		return false
	}
	return b.Timeline.UpAt(simclock.Time(t.Sub(b.start)))
}

// dispatchable reports whether the front-end would route a new request
// here: structurally in rotation, heartbeat-healthy, breaker willing,
// and (half-open) not already carrying a trial.
func (b *Backend) dispatchable(now simclock.Time) bool {
	if !b.admitted || b.retired || b.draining || !b.healthy {
		return false
	}
	if !b.breaker.Allow(now) {
		return false
	}
	if b.breaker.State() == BreakerHalfOpen && b.inflight > 0 {
		return false
	}
	return true
}

// active reports structural pool membership: admitted, not retired, not
// draining. The rolling-upgrade invariant is stated over this count.
func (b *Backend) active() bool { return b.admitted && !b.retired && !b.draining }
