package fleet

import (
	"container/heap"
	"testing"

	"lupine/internal/simclock"
)

// drainFixture builds a quiet fleet (no traffic) whose event loop the
// test drives by hand, so drain semantics are observable step by step.
func drainFixture(names ...string) *Fleet {
	cfg := DefaultConfig()
	cfg.Requests = 0
	var backends []*Backend
	for _, n := range names {
		backends = append(backends, NewBackend(n, AlwaysUp()))
	}
	return New(cfg, backends, nil, nil)
}

// runEvents drains the fleet's event queue in deterministic order, the
// same loop Run uses.
func runEvents(f *Fleet) {
	for f.events.Len() > 0 {
		e := heap.Pop(&f.events).(*event)
		f.clk.AdvanceTo(e.at)
		e.fn(e.at)
	}
}

// TestDrainIdleRetiresImmediately: a backend with nothing in flight
// leaves the pool at the drain instant and fires its continuation once.
func TestDrainIdleRetiresImmediately(t *testing.T) {
	f := drainFixture("a", "b")
	b := f.backends[0]
	fired := 0
	var firedAt simclock.Time
	f.drain(b, 5*ms, simclock.Time(2*ms), func(now simclock.Time) { fired++; firedAt = now })
	if !b.retired {
		t.Fatal("idle backend not retired at drain time")
	}
	if fired != 1 || firedAt != simclock.Time(2*ms) {
		t.Errorf("continuation fired %d times at %v, want once at 2ms", fired, firedAt)
	}
	f.retire(b, simclock.Time(3*ms))
	if fired != 1 {
		t.Errorf("retire is not idempotent: continuation fired %d times", fired)
	}
}

// TestDrainWaitsForInflight: a draining backend takes no new work but
// stays until its last in-flight request resolves, then retires at that
// instant — not at the timeout.
func TestDrainWaitsForInflight(t *testing.T) {
	f := drainFixture("a", "b")
	b := f.backends[0]
	b.inflight = 2
	retiredAt := simclock.Time(-1)
	f.drain(b, 50*ms, 0, func(now simclock.Time) { retiredAt = now })
	if b.retired {
		t.Fatal("retired with requests in flight")
	}
	if !b.draining || b.dispatchable(0) {
		t.Error("draining backend still dispatchable")
	}
	b.inflight = 1
	f.maybeDrained(b, simclock.Time(1*ms))
	if b.retired {
		t.Fatal("retired before the last in-flight request resolved")
	}
	b.inflight = 0
	f.maybeDrained(b, simclock.Time(3*ms))
	if !b.retired || retiredAt != simclock.Time(3*ms) {
		t.Errorf("retired=%v at %v, want retirement at 3ms", b.retired, retiredAt)
	}
	// The pending timeout event must now be a no-op.
	runEvents(f)
	if retiredAt != simclock.Time(3*ms) {
		t.Errorf("timeout re-fired the continuation at %v", retiredAt)
	}
}

// TestDrainTimeoutAbandonsStragglers: in-flight work that never resolves
// is abandoned when the drain timeout elapses.
func TestDrainTimeoutAbandonsStragglers(t *testing.T) {
	f := drainFixture("a", "b")
	b := f.backends[0]
	b.inflight = 1 // never resolves
	retiredAt := simclock.Time(-1)
	f.drain(b, 5*ms, simclock.Time(10*ms), func(now simclock.Time) { retiredAt = now })
	runEvents(f)
	if !b.retired || retiredAt != simclock.Time(15*ms) {
		t.Errorf("retired=%v at %v, want forced retirement at drain start + timeout = 15ms",
			b.retired, retiredAt)
	}
}

// TestNewestActiveOrdering: scale-down victims are chosen LIFO — the
// most recently admitted active backend goes first, and draining or
// retired members are skipped.
func TestNewestActiveOrdering(t *testing.T) {
	f := drainFixture("a", "b", "c")
	if got := f.newestActive(); got == nil || got.Name != "c" {
		t.Fatalf("newestActive = %v, want c", got)
	}
	f.backends[2].draining = true
	if got := f.newestActive(); got == nil || got.Name != "b" {
		t.Errorf("newestActive with c draining = %v, want b", got)
	}
	f.backends[1].retired = true
	if got := f.newestActive(); got == nil || got.Name != "a" {
		t.Errorf("newestActive with b retired = %v, want a", got)
	}
	f.backends[0].draining = true
	if got := f.newestActive(); got != nil {
		t.Errorf("newestActive on a fully draining pool = %v, want nil", got)
	}
}

// TestUpgradeSurgeHoldsMinActive is the satellite's invariant under
// load: with requests in flight through every drain, the structurally
// active count never dips below the original pool size, because the
// surge instance joins before the first drain begins.
func TestUpgradeSurgeHoldsMinActive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Requests = 4000 // traffic spans the whole rollout
	plan := &UpgradePlan{
		Start:        simclock.Time(5 * ms),
		BootTime:     3 * ms,
		DrainTimeout: 2 * ms,
		RebuildTime:  func(i int) simclock.Duration { return simclock.Duration(i) * ms },
		Surge:        AlwaysUp(),
	}
	f := New(cfg, []*Backend{
		NewBackend("a", AlwaysUp()),
		NewBackend("b", AlwaysUp()),
		NewBackend("c", AlwaysUp()),
	}, plan, nil)
	res := f.Run()
	checkConservation(t, res)
	if res.MinActive < 3 {
		t.Errorf("MinActive = %d during the rollout, want >= 3 (surge pays for every drain)", res.MinActive)
	}
	if !f.upgraded {
		t.Error("rollout never completed")
	}
	// Drain ordering: originals retire in admission order, then the surge.
	var order []string
	for _, b := range f.backends {
		if b.retired {
			order = append(order, b.Name)
		}
	}
	want := []string{"a", "b", "c", "surge"}
	if len(order) != len(want) {
		t.Fatalf("retired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("retired in order %v, want %v", order, want)
		}
	}
}

// TestUpgradeSlowSurgeDelaysRollout: the rollout must not begin until
// the surge instance is in rotation — a slow surge boot shifts the whole
// schedule rather than letting capacity dip.
func TestUpgradeSlowSurgeDelaysRollout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Requests = 4000
	plan := &UpgradePlan{
		Start:        simclock.Time(5 * ms),
		BootTime:     40 * ms, // surge takes most of the run to boot
		DrainTimeout: 2 * ms,
		Surge:        AlwaysUp(),
	}
	f := New(cfg, []*Backend{
		NewBackend("a", AlwaysUp()),
		NewBackend("b", AlwaysUp()),
		NewBackend("c", AlwaysUp()),
	}, plan, nil)
	res := f.Run()
	checkConservation(t, res)
	if res.MinActive < 3 {
		t.Errorf("MinActive = %d with a slow surge, want >= 3 (no drain before the surge joins)", res.MinActive)
	}
	var surge *Backend
	for _, b := range f.backends {
		if b.Name == "surge" {
			surge = b
		}
	}
	if surge == nil {
		t.Fatal("no surge backend in pool")
	}
	if want := plan.Start.Add(plan.BootTime); surge.start != want {
		t.Errorf("surge joined at %v, want start+boot = %v", surge.start, want)
	}
}
