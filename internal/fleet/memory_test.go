package fleet

import (
	"testing"

	"lupine/internal/simclock"
)

// fakePlane is a scriptable MemoryPlane: shed inside a window, kill once
// at a given tick count.
type fakePlane struct {
	shedFrom, shedTo simclock.Time
	killAt           int
	killLaunch       *Launch

	ticks    int
	killed   *Backend
	finished bool
	end      simclock.Time
}

func (p *fakePlane) Tick(f *Fleet, now simclock.Time) {
	p.ticks++
	if p.killAt > 0 && p.ticks == p.killAt {
		p.killed = f.OOMKill(p.killLaunch, now)
	}
}

func (p *fakePlane) ShedAdmission(now simclock.Time) bool {
	return now >= p.shedFrom && now < p.shedTo
}

func (p *fakePlane) Finish(end simclock.Time) MemStats {
	p.finished = true
	p.end = end
	return MemStats{Kills: 1}
}

func memTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Requests = 200
	return cfg
}

// TestMemoryShedWindow: arrivals inside the plane's shed window are
// refused and double-counted as Shed and MemSheds; outside it traffic
// flows normally, and Finish lands in Result.Mem.
func TestMemoryShedWindow(t *testing.T) {
	const ms = simclock.Millisecond
	cfg := memTestConfig()
	backends := []*Backend{NewBackend("a", AlwaysUp()), NewBackend("b", AlwaysUp())}
	p := &fakePlane{shedFrom: simclock.Time(2 * ms), shedTo: simclock.Time(4 * ms)}
	f := New(cfg, backends, nil, nil)
	f.AttachMemory(p, 500*simclock.Microsecond)

	res := f.Run()
	if res.MemSheds == 0 {
		t.Error("no arrivals shed inside the pressure window")
	}
	if res.Shed < res.MemSheds {
		t.Errorf("Shed %d < MemSheds %d: memory sheds must be a subset", res.Shed, res.MemSheds)
	}
	if res.OK+res.Shed+res.Failed != res.Total {
		t.Errorf("conservation broken: %d+%d+%d != %d", res.OK, res.Shed, res.Failed, res.Total)
	}
	if res.OK == 0 {
		t.Error("everything shed: window should only cover part of the run")
	}
	if !p.finished || res.Mem.Kills != 1 {
		t.Errorf("Finish not folded into Result.Mem: finished=%v mem=%+v", p.finished, res.Mem)
	}
	if p.end != res.End {
		t.Errorf("Finish saw end %v, run ended %v", p.end, res.End)
	}
	if p.ticks == 0 {
		t.Error("plane never ticked")
	}
}

// TestOOMKillVictimAndReplacement: the kill takes the newest active
// backend (LIFO), fires its release hook immediately, and the
// replacement joins after the launch latency with its own release hook
// and restore accounting.
func TestOOMKillVictimAndReplacement(t *testing.T) {
	cfg := memTestConfig()
	var releases []string
	a := NewBackend("a", AlwaysUp())
	b := NewBackend("b", AlwaysUp())
	b.SetOnRelease(func(simclock.Time) { releases = append(releases, "b") })
	p := &fakePlane{
		killAt: 3,
		killLaunch: &Launch{
			Ready:     100 * simclock.Microsecond,
			Restored:  true,
			OnRetired: func(simclock.Time) { releases = append(releases, "oom") },
		},
	}
	f := New(cfg, []*Backend{a, b}, nil, nil)
	f.AttachMemory(p, 500*simclock.Microsecond)

	res := f.Run()
	if p.killed != b {
		t.Fatalf("victim %v, want the newest backend b", p.killed)
	}
	if !b.retired {
		t.Error("victim not retired")
	}
	if len(releases) == 0 || releases[0] != "b" {
		t.Errorf("victim release hook order %v, want b first", releases)
	}
	if res.Restores != 1 {
		t.Errorf("Restores %d, want 1 (replacement restored from snapshot)", res.Restores)
	}
	// The replacement backend is in the pool and carried its own hook.
	var oom *Backend
	for _, bk := range f.Backends() {
		if bk.Name == "oom1" {
			oom = bk
		}
	}
	if oom == nil {
		t.Fatal("no oom1 replacement in the pool")
	}
	if oom.onRelease == nil {
		t.Error("replacement lost its release hook")
	}
	// Killing with no launch when only one backend remains: victim is the
	// replacement (newest), then the origin, then nil.
	now := res.End
	if v := f.OOMKill(nil, now); v != oom {
		t.Errorf("second kill victim %v, want oom1", v)
	}
	if v := f.OOMKill(nil, now); v != a {
		t.Errorf("third kill victim %v, want a", v)
	}
	if v := f.OOMKill(nil, now); v != nil {
		t.Errorf("kill with empty pool returned %v", v)
	}
}

// TestScaleDownReleasesClone: the satellite fix — a Launch's OnRetired
// must fire when the autoscaler drains the backend away (LIFO
// scale-down), not leak. Uses a provision hook and low demand so the
// scaler grows then shrinks.
func TestScaleDownReleasesClone(t *testing.T) {
	const us = simclock.Microsecond
	cfg := memTestConfig()
	cfg.Requests = 400
	cfg.Interarrival = 20 * us // burst to force a scale-up
	released := 0
	scaler := &AutoscalePolicy{
		Min: 1, Max: 4,
		TargetUtil: 0.75, LowUtil: 0.25,
		Evaluate:     200 * us,
		DrainTimeout: 1 * simclock.Millisecond,
		Provision: func(seq int, now simclock.Time) Launch {
			return Launch{
				Ready:     50 * us,
				Restored:  true,
				OnRetired: func(simclock.Time) { released++ },
			}
		},
	}
	f := NewAutoscaled(cfg, []*Backend{NewBackend("origin", AlwaysUp())}, scaler, nil, nil)
	res := f.Run()
	if res.ScaleUps == 0 {
		t.Fatal("burst did not trigger a scale-up; test tuning broken")
	}
	if res.ScaleDowns == 0 {
		t.Fatal("trailing quiet period did not trigger a scale-down")
	}
	if released == 0 {
		t.Error("scale-down drained a restored backend without firing OnRetired: clone pages leak")
	}
	if released > res.ScaleDowns {
		t.Errorf("released %d > scale-downs %d: release fired more than once per drain", released, res.ScaleDowns)
	}
}

// TestRetireFiresBothHooks: onRelease and onRetired are independent
// slots; drain's continuation must not clobber the release hook.
func TestRetireFiresBothHooks(t *testing.T) {
	cfg := memTestConfig()
	f := New(cfg, []*Backend{NewBackend("a", AlwaysUp()), NewBackend("b", AlwaysUp())}, nil, nil)
	b := f.backends[1]
	var order []string
	b.SetOnRelease(func(simclock.Time) { order = append(order, "release") })
	f.drain(b, simclock.Millisecond, 0, func(simclock.Time) { order = append(order, "done") })
	if len(order) != 2 || order[0] != "release" || order[1] != "done" {
		t.Errorf("hook order %v, want [release done]", order)
	}
	// retire is idempotent: nothing fires twice.
	f.retire(b, 0)
	if len(order) != 2 {
		t.Errorf("re-retire fired hooks again: %v", order)
	}
}
