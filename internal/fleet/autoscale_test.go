package fleet

import (
	"fmt"
	"testing"

	"lupine/internal/simclock"
)

const us = simclock.Microsecond

// surgeTestConfig shapes a spike a 2-backend pool cannot absorb, so the
// autoscaler must act.
func surgeTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Requests = 2000
	cfg.Interarrival = 10 * us
	cfg.ArrivalJitter = 5 * us
	return cfg
}

func surgeTestPolicy() *AutoscalePolicy {
	return &AutoscalePolicy{
		Min:          2,
		Max:          6,
		TargetUtil:   0.7,
		LowUtil:      0.2,
		Evaluate:     250 * us,
		UpCooldown:   500 * us,
		DownCooldown: 5 * ms,
		MaxStep:      2,
		DrainTimeout: 2 * ms,
	}
}

func minPool(n int) []*Backend {
	var out []*Backend
	for i := 0; i < n; i++ {
		out = append(out, NewBackend(fmt.Sprintf("vm%d", i), AlwaysUp()))
	}
	return out
}

// TestAutoscalerGrowsUnderSpike: demand above target utilization grows
// the pool toward Max and availability beats the fixed Min pool's.
func TestAutoscalerGrowsUnderSpike(t *testing.T) {
	cfg := surgeTestConfig()
	fixed := New(cfg, minPool(2), nil, nil).Run()
	scaled := NewAutoscaled(cfg, minPool(2), surgeTestPolicy(), nil, nil).Run()
	checkConservation(t, fixed)
	checkConservation(t, scaled)
	if scaled.ScaleUps == 0 {
		t.Fatal("spike never triggered a scale-up")
	}
	if scaled.PeakActive <= 2 {
		t.Errorf("PeakActive = %d, pool never grew", scaled.PeakActive)
	}
	if scaled.PeakActive > 6 {
		t.Errorf("PeakActive = %d exceeds Max 6", scaled.PeakActive)
	}
	if scaled.Availability() <= fixed.Availability() {
		t.Errorf("autoscaled availability %.3f not above fixed pool's %.3f",
			scaled.Availability(), fixed.Availability())
	}
	// Instant provisioning (nil Provision) counts as cold boots.
	if scaled.Restores != 0 || scaled.ColdBoots == 0 {
		t.Errorf("launch accounting: restores=%d coldboots=%d, want 0 and >0",
			scaled.Restores, scaled.ColdBoots)
	}
}

// TestAutoscalerFullAt: a spike heavy enough to saturate the pool
// records the first instant it reached Max; a quiet pool records never.
func TestAutoscalerFullAt(t *testing.T) {
	cfg := surgeTestConfig()
	res := NewAutoscaled(cfg, minPool(2), surgeTestPolicy(), nil, nil).Run()
	if res.FullAt < 0 {
		t.Fatalf("FullAt = %v under a saturating spike, want reached", res.FullAt)
	}
	if res.FullAt > res.End {
		t.Errorf("FullAt %v past End %v", res.FullAt, res.End)
	}

	quiet := DefaultConfig()
	quiet.Interarrival = 200 * us // comfortably served by the Min pool
	qres := NewAutoscaled(quiet, minPool(2), surgeTestPolicy(), nil, nil).Run()
	if qres.FullAt != -1 {
		t.Errorf("quiet pool FullAt = %v, want -1 (never)", qres.FullAt)
	}
	if qres.ScaleUps != 0 {
		t.Errorf("quiet pool scaled up %d times", qres.ScaleUps)
	}
}

// TestAutoscalerScaleDown: a pool started above Min with demand far
// below LowUtil drains back toward Min, newest members first, and never
// below it.
func TestAutoscalerScaleDown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Requests = 200
	cfg.Interarrival = 1 * ms // sparse: demand ~0 at most evaluate ticks
	p := surgeTestPolicy()
	p.DownCooldown = 1 * ms
	f := NewAutoscaled(cfg, minPool(5), p, nil, nil)
	res := f.Run()
	checkConservation(t, res)
	if res.ScaleDowns == 0 {
		t.Fatal("idle pool never scaled down")
	}
	active := 0
	for _, b := range f.Backends() {
		if b.active() {
			active++
		}
	}
	if active < p.Min {
		t.Errorf("active pool %d drained below Min %d", active, p.Min)
	}
	// LIFO victims: the newest members retire, vm0 and vm1 survive.
	for _, b := range f.Backends()[:p.Min] {
		if b.retired || b.draining {
			t.Errorf("oldest backend %s was drained before newer ones", b.Name)
		}
	}
}

// TestAutoscalerProvisionLatencyAndAccounting: launches pay the
// policy's provisioning latency before joining, and Restored launches
// are counted apart from cold boots.
func TestAutoscalerProvisionLatencyAndAccounting(t *testing.T) {
	cfg := surgeTestConfig()
	p := surgeTestPolicy()
	var launches []simclock.Time
	p.Provision = func(seq int, now simclock.Time) Launch {
		launches = append(launches, now)
		return Launch{Ready: 300 * us, Restored: seq%2 == 1}
	}
	f := NewAutoscaled(cfg, minPool(2), p, nil, nil)
	res := f.Run()
	checkConservation(t, res)
	if len(launches) == 0 {
		t.Fatal("provision never called")
	}
	if got := res.Restores + res.ColdBoots; got != len(launches) {
		t.Errorf("restores %d + coldboots %d != %d launches", res.Restores, res.ColdBoots, len(launches))
	}
	if res.Restores == 0 || res.ColdBoots == 0 {
		t.Errorf("alternating provision gave restores=%d coldboots=%d, want both nonzero",
			res.Restores, res.ColdBoots)
	}
	// Provisioned backends exist and join after their latency; the first
	// decision cannot predate the first evaluate tick.
	if launches[0] < simclock.Time(p.Evaluate) {
		t.Errorf("first launch at %v, before the first evaluate tick %v", launches[0], p.Evaluate)
	}
	auto := 0
	for _, b := range f.Backends() {
		if b.admitted && len(b.Name) > 4 && b.Name[:4] == "auto" {
			auto++
			if b.start < launches[0].Add(300*us) {
				t.Errorf("backend %s admitted at %v, before any launch could finish", b.Name, b.start)
			}
		}
	}
	if auto != len(launches) {
		t.Errorf("%d auto backends in pool, want %d", auto, len(launches))
	}
}

// TestAutoscalerCooldownBoundsLaunches: each scale-up decision adds at
// most MaxStep backends and decisions are at least UpCooldown apart, so
// total launches are bounded by the spike duration.
func TestAutoscalerCooldownBoundsLaunches(t *testing.T) {
	cfg := surgeTestConfig()
	p := surgeTestPolicy()
	p.UpCooldown = 2 * ms
	res := NewAutoscaled(cfg, minPool(2), p, nil, nil).Run()
	if res.ScaleUps == 0 {
		t.Fatal("no scale-ups under the spike")
	}
	maxDecisions := int(res.End/simclock.Time(p.UpCooldown)) + 1
	if res.ScaleUps > maxDecisions {
		t.Errorf("%d scale-ups in %v violates the %v up-cooldown", res.ScaleUps, res.End, p.UpCooldown)
	}
	if got := res.Restores + res.ColdBoots; got > res.ScaleUps*p.MaxStep {
		t.Errorf("%d launches from %d decisions exceeds MaxStep %d", got, res.ScaleUps, p.MaxStep)
	}
	if res.PeakActive > p.Max {
		t.Errorf("PeakActive %d exceeds Max %d", res.PeakActive, p.Max)
	}
}

// TestLaunchTimelineDefaults: a zero-value Launch timeline means
// AlwaysUp (the autoscaler never provisions a dead backend on purpose);
// an explicit timeline is preserved.
func TestLaunchTimelineDefaults(t *testing.T) {
	if tl := launchTimeline(Launch{}); !tl.UpAt(0) || !tl.UpAt(simclock.Time(simclock.Second)) {
		t.Error("zero Launch timeline did not default to AlwaysUp")
	}
	custom := Timeline{Up: []Interval{{From: 0, To: simclock.Time(ms)}}, End: simclock.Time(ms)}
	got := launchTimeline(Launch{Timeline: custom})
	if !got.UpAt(0) || got.UpAt(simclock.Time(2*ms)) {
		t.Error("explicit Launch timeline was not preserved")
	}
}

// TestAutoscalerDeterministic: the autoscaled run — seeded arrivals,
// provisioning latencies, drains — replays bit-for-bit.
func TestAutoscalerDeterministic(t *testing.T) {
	run := func() string {
		cfg := surgeTestConfig()
		p := surgeTestPolicy()
		p.Provision = func(seq int, now simclock.Time) Launch {
			return Launch{Ready: 200 * us, Restored: true}
		}
		res := NewAutoscaled(cfg, minPool(2), p, nil, nil).Run()
		return fmt.Sprintf("%+v", res)
	}
	if first, second := run(), run(); first != second {
		t.Errorf("autoscaled run not deterministic:\n--- first\n%s\n--- second\n%s", first, second)
	}
}
