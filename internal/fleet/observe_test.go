package fleet

import (
	"reflect"
	"testing"

	"lupine/internal/simclock"
	"lupine/internal/telemetry"
)

func flakyPool() []*Backend {
	flaky := Timeline{
		Up:      []Interval{{From: 0, To: simclock.Time(20 * ms)}},
		End:     simclock.Time(60 * ms),
		UpAfter: true,
	}
	return []*Backend{
		NewBackend("a", AlwaysUp()),
		NewBackend("b", AlwaysUp()),
		NewBackend("c", flaky),
	}
}

// TestFleetDisabledTelemetryAllocs pins the zero-cost-when-disabled
// contract on the dispatch hot path: Observe with both planes nil leaves
// the fleet un-instrumented, and the per-request metric calls the engine
// then makes (nil handles, `f.tr != nil` guards) allocate nothing.
func TestFleetDisabledTelemetryAllocs(t *testing.T) {
	f := New(DefaultConfig(), flakyPool(), nil, nil)
	f.Observe(nil, nil, "x")
	if f.tr != nil || f.mOK != nil || f.hLatency != nil {
		t.Fatal("Observe(nil, nil) instrumented the fleet")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		// Exactly the calls the engine makes per request when disabled.
		f.mOK.Inc()
		f.mShed.Inc()
		f.mFailed.Inc()
		f.mRetries.Inc()
		f.hLatency.Observe(123 * simclock.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled hot-path metrics allocated %.1f per request", allocs)
	}
}

// TestFleetTelemetryIsPureObservation: attaching the full plane must not
// change a single engine decision — both runs produce identical Results.
func TestFleetTelemetryIsPureObservation(t *testing.T) {
	plain := New(DefaultConfig(), flakyPool(), nil, nil)
	base := plain.Run()

	observed := New(DefaultConfig(), flakyPool(), nil, nil)
	tr := telemetry.New()
	tr.SetFlight(telemetry.NewRecorder(0))
	reg := telemetry.NewRegistry()
	observed.Observe(tr, reg, "pool")
	got := observed.Run()

	if !reflect.DeepEqual(base, got) {
		t.Fatalf("telemetry changed the run:\nbase %+v\ngot  %+v", base, got)
	}
}

// TestFleetTelemetryContent checks the plane records what the result
// claims: served/failed counters match, the latency histogram saw every
// served request, dispatch spans exist, and breaker transitions land as
// events on the flaky backend's lane.
func TestFleetTelemetryContent(t *testing.T) {
	f := New(DefaultConfig(), flakyPool(), nil, nil)
	tr := telemetry.New()
	reg := telemetry.NewRegistry()
	f.Observe(tr, reg, "pool")
	res := f.Run()

	if got := reg.Counter("pool.served").Value(); got != int64(res.OK) {
		t.Errorf("served counter %d, result OK %d", got, res.OK)
	}
	if got := reg.Counter("pool.failed").Value(); got != int64(res.Failed) {
		t.Errorf("failed counter %d, result Failed %d", got, res.Failed)
	}
	if got := reg.Counter("pool.retries").Value(); got != int64(res.Retries) {
		t.Errorf("retries counter %d, result Retries %d", got, res.Retries)
	}
	// Result.BreakerOpens also counts failures landing on an already-open
	// breaker, so the counter is checked against the transition records —
	// the ground truth for actual closed/half-open -> open edges.
	var opens int64
	for _, b := range f.Backends() {
		if br := b.Breaker(); br != nil {
			for _, tr := range br.Transitions {
				if tr.To == BreakerOpen {
					opens++
				}
			}
		}
	}
	if got := reg.Counter("pool.breaker-opens").Value(); got != opens || opens == 0 {
		t.Errorf("breaker-opens counter %d, recorded open transitions %d (want equal, nonzero)", got, opens)
	}
	if got := reg.Histogram("pool.latency").Count(); got != int64(res.OK) {
		t.Errorf("latency histogram saw %d samples, served %d", got, res.OK)
	}

	var dispatches int
	for _, s := range tr.Spans() {
		if s.Cat == "fleet" && s.Name == "dispatch" {
			dispatches++
		}
	}
	if dispatches != res.OK {
		t.Errorf("dispatch spans %d, served %d", dispatches, res.OK)
	}

	var breakerEvents, transitions int
	for _, e := range tr.Events() {
		if e.Cat == "fleet" && len(e.Name) > 8 && e.Name[:8] == "breaker:" {
			breakerEvents++
		}
	}
	for _, b := range f.Backends() {
		if br := b.Breaker(); br != nil {
			transitions += len(br.Transitions)
		}
	}
	if breakerEvents != transitions || transitions == 0 {
		t.Errorf("breaker events %d, recorded transitions %d (want equal, nonzero)", breakerEvents, transitions)
	}
}
