package fleet

import (
	"testing"

	"lupine/internal/simclock"
)

// TestQuarantineAccounting: a deliberate quarantine opens the breaker
// (BreakerOpens) and lands in the distinct Quarantines counter — never
// in FalseTrips, which is reserved for the breaker misjudging a live
// backend. Wire failures arriving after the quarantine (the egress cut
// killing in-flight responses) must not turn into false trips either.
func TestQuarantineAccounting(t *testing.T) {
	f := drainFixture("a", "b", "c")
	b := f.backends[0]
	now := simclock.Time(1 * ms)

	if !f.Quarantine(b, 1, now) {
		t.Fatal("quarantine refused with the floor comfortably held")
	}
	if f.res.Quarantines != 1 || f.res.FalseTrips != 0 || f.res.BreakerOpens != 1 {
		t.Fatalf("quarantines=%d falseTrips=%d opens=%d, want 1/0/1",
			f.res.Quarantines, f.res.FalseTrips, f.res.BreakerOpens)
	}
	if b.breaker.State() != BreakerOpen {
		t.Fatalf("breaker state %v, want open", b.breaker.State())
	}
	if !b.draining || b.dispatchable(now) {
		t.Fatal("quarantined backend must be draining and undispatchable")
	}

	// In-flight responses dying on the cut egress report as breaker
	// failures; with the breaker already deliberately open they must not
	// become false trips.
	f.breakerFailure(b, now.Add(100*simclock.Microsecond))
	if f.res.FalseTrips != 0 {
		t.Fatalf("post-quarantine wire failure counted as a false trip")
	}

	// Quarantining an already-draining backend is a no-op that reports
	// success without recounting.
	opens := f.res.BreakerOpens
	if !f.Quarantine(b, 1, now.Add(ms)) {
		t.Fatal("re-quarantine must report already-out-of-rotation as success")
	}
	if f.res.Quarantines != 1 || f.res.BreakerOpens != opens {
		t.Fatalf("re-quarantine recounted: quarantines=%d opens=%d",
			f.res.Quarantines, f.res.BreakerOpens)
	}
}

// TestQuarantineHoldsFloor: a quarantine that would drop the active
// count below the floor refuses, so the caller repaves first; floor 0
// (the post-repave retry) always lands.
func TestQuarantineHoldsFloor(t *testing.T) {
	f := drainFixture("a", "b")
	now := simclock.Time(1 * ms)

	if !f.Quarantine(f.backends[0], 1, now) {
		t.Fatal("first quarantine must land: 2 active, floor 1")
	}
	if f.Quarantine(f.backends[1], 1, now) {
		t.Fatal("second quarantine must defer: it would empty the cell")
	}
	if f.res.Quarantines != 1 {
		t.Fatalf("deferred quarantine counted: %d", f.res.Quarantines)
	}
	if !f.Quarantine(f.backends[1], 0, now.Add(ms)) {
		t.Fatal("floor 0 must always land")
	}
	if f.res.Quarantines != 2 {
		t.Fatalf("quarantines=%d, want 2", f.res.Quarantines)
	}
	if f.res.MinActive != 0 {
		t.Fatalf("minActive=%d after quarantining everything, want 0", f.res.MinActive)
	}
}
