package bunny

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

func TestParseTextBunnyfile(t *testing.T) {
	s, err := Parse([]byte(`
# redis, specialized for the fleet
app: redis
profile: nokml
options: MULTIPROCESS FUTEX
options: EPOLL
env: TZ=UTC
rootfs: /etc/redis.conf=maxmemory 128mb
`))
	if err != nil {
		t.Fatal(err)
	}
	if s.App != "redis" || s.Monitor != DefaultMonitor || s.Profile != ProfileNoKML {
		t.Errorf("parsed %+v", s)
	}
	if want := []string{"EPOLL", "FUTEX", "MULTIPROCESS"}; !reflect.DeepEqual(s.Options, want) {
		t.Errorf("options = %v, want %v (sorted, accumulated)", s.Options, want)
	}
	if s.Env["TZ"] != "UTC" {
		t.Errorf("env = %v", s.Env)
	}
	if len(s.RootFS) != 1 || s.RootFS[0].Path != "/etc/redis.conf" || s.RootFS[0].Data != "maxmemory 128mb" {
		t.Errorf("rootfs = %+v", s.RootFS)
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"options: FUTEX\n",             // no app
		"app: x\nmonitor: vmware\n",    // unknown monitor
		"app: x\nprofile: massive\n",   // unknown profile
		"app: x\nwhat: ever\n",         // unknown key
		"app: x\nrootfs: noequals\n",   // malformed rootfs entry
		"app: x\nrootfs: rel/path=d\n", // relative path
		"app: x\nenv: novalue\n",       // malformed env entry
		"just some words\n",            // not key: value
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

// JSON round-trip: Marshal is deterministic (Env map keys sort), and
// parsing the output reproduces the spec and its digest exactly.
func TestJSONRoundTripDeterminism(t *testing.T) {
	s := New("nginx", "EPOLL", "FUTEX")
	s.Env = map[string]string{"B": "2", "A": "1", "C": "3"}
	s.RootFS = []Entry{{Path: "/etc/nginx.conf", Data: "worker_processes 1;"}}
	s.Normalize()

	blob, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := s.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(blob) {
			t.Fatal("Marshal is not deterministic across calls")
		}
	}
	back, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("round trip changed the spec:\n got %+v\nwant %+v", back, s)
	}
	if back.Digest() != s.Digest() {
		t.Error("round trip changed the digest")
	}
}

// Duplicate and unsorted options normalize away, in JSON and text form
// alike.
func TestDuplicateOptionNormalization(t *testing.T) {
	s, err := ParseJSON([]byte(`{"app":"redis","options":["FUTEX","EPOLL","FUTEX","","EPOLL"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"EPOLL", "FUTEX"}; !reflect.DeepEqual(s.Options, want) {
		t.Errorf("options = %v, want %v", s.Options, want)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("normalized spec fails validation: %v", err)
	}
}

// Quick-check over seeded permutations: specs that mean the same build —
// whatever order their options, env entries, or rootfs files arrived in
// — always produce equal digests, and any semantic difference changes
// the digest.
func TestEqualSpecsEqualDigests(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	baseOpts := []string{"EPOLL", "FUTEX", "MULTIPROCESS", "SYSVIPC", "UNIX"}
	baseEnv := [][2]string{{"A", "1"}, {"B", "2"}, {"C", "3"}}
	baseFS := []Entry{{Path: "/a", Data: "x"}, {Path: "/b", Data: "y"}}

	mk := func(opts []string, env [][2]string, fs []Entry) *Spec {
		s := New("redis", opts...)
		s.Env = map[string]string{}
		for _, kv := range env {
			s.Env[kv[0]] = kv[1]
		}
		s.RootFS = append([]Entry(nil), fs...)
		s.Normalize()
		return s
	}
	want := mk(baseOpts, baseEnv, baseFS).Digest()
	for i := 0; i < 50; i++ {
		opts := append([]string(nil), baseOpts...)
		rng.Shuffle(len(opts), func(a, b int) { opts[a], opts[b] = opts[b], opts[a] })
		// Duplicate a random option: normalization must erase it.
		opts = append(opts, opts[rng.Intn(len(opts))])
		env := append([][2]string(nil), baseEnv...)
		rng.Shuffle(len(env), func(a, b int) { env[a], env[b] = env[b], env[a] })
		fs := append([]Entry(nil), baseFS...)
		rng.Shuffle(len(fs), func(a, b int) { fs[a], fs[b] = fs[b], fs[a] })
		if got := mk(opts, env, fs).Digest(); got != want {
			t.Fatalf("permutation %d: digest %s != %s", i, got, want)
		}
	}

	// Each semantic change must move the digest.
	variants := []*Spec{
		mk(baseOpts[:4], baseEnv, baseFS),                                  // option removed
		mk(baseOpts, baseEnv[:2], baseFS),                                  // env entry removed
		mk(baseOpts, baseEnv, baseFS[:1]),                                  // rootfs entry removed
		mk(baseOpts, baseEnv, []Entry{{Path: "/a", Data: "z"}, baseFS[1]}), // contents changed
	}
	kml := mk(baseOpts, baseEnv, baseFS)
	kml.Profile = ProfileKML
	variants = append(variants, kml)
	seen := map[string]bool{want: true}
	for i, v := range variants {
		d := v.Digest()
		if seen[d] {
			t.Errorf("variant %d: digest collision with a different spec", i)
		}
		seen[d] = true
	}
}

func TestJSONAutodetect(t *testing.T) {
	s, err := Parse([]byte(`  {"app":"redis"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.App != "redis" || s.Monitor != DefaultMonitor {
		t.Errorf("parsed %+v", s)
	}
	// Marshal output of a valid spec is itself valid JSON.
	blob, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(blob) {
		t.Error("Marshal produced invalid JSON")
	}
}
