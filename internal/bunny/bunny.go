// Package bunny is the declarative build pipeline over the paper's
// Figure 2: a bunnyfile-style spec names an application, a monitor, a
// configuration profile and extra root filesystem entries, and the
// compiler turns it into a Lupine unikernel image through the real
// kconfig→kbuild→rootfs pipeline. Specs normalize deterministically
// (sorted, deduplicated options — the manifest.New discipline) and are
// content-addressed: the spec digest plus the kernel tree version key a
// digest-addressed image cache, so the same spec never builds twice and
// two specs that resolve to the same kernel identity share the kernel
// image even when their root filesystems differ. The "functor driven
// development" idea (PAPERS.md) applied to Lupine: declare once, compile
// into as many specialized images as the fleet needs.
package bunny

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"lupine/internal/attack"
)

// Profiles select the Lupine variant of §4.
const (
	ProfileNoKML = "nokml" // the default: PARAVIRT kept, no KML patch
	ProfileKML   = "kml"   // KML patch + patched musl
	ProfileTiny  = "tiny"  // -Os plus the 9 flipped size options
)

// DefaultMonitor is the monitor a spec omits: the paper's Firecracker.
const DefaultMonitor = "firecracker"

// validMonitors are the monitors the build pipeline can target.
var validMonitors = map[string]bool{
	"firecracker": true,
	"qemu":        true,
	"solo5-hvt":   true,
	"uhyve":       true,
}

// validProfiles are the recognized configuration profiles.
var validProfiles = map[string]bool{
	ProfileNoKML: true,
	ProfileKML:   true,
	ProfileTiny:  true,
}

// Entry is one extra root filesystem file the spec ships alongside the
// application (configs, seed data).
type Entry struct {
	Path string `json:"path"`
	Mode uint32 `json:"mode,omitempty"` // 0 means 0644
	Data string `json:"data,omitempty"`
}

// Spec is the declarative build request: everything that determines the
// produced image, and nothing else.
type Spec struct {
	App     string            `json:"app"`               // registry application name
	Monitor string            `json:"monitor,omitempty"` // default firecracker
	Profile string            `json:"profile,omitempty"` // nokml (default), kml, tiny
	Options []string          `json:"options,omitempty"` // kernel options atop the app manifest
	Env     map[string]string `json:"env,omitempty"`     // extra environment entries
	RootFS  []Entry           `json:"rootfs,omitempty"`  // extra rootfs files

	// Hardening selects a mitigation level — off (default), aslr or
	// full — mapping to priced kconfig options (attack.HardeningOptions),
	// so a hardened build pays its boot-time and image-size costs through
	// the same pipeline as every other option.
	Hardening string `json:"hardening,omitempty"`
}

// New returns a normalized spec for app with the given extra options.
func New(app string, options ...string) *Spec {
	s := &Spec{App: app, Options: options}
	s.Normalize()
	return s
}

// Normalize puts the spec in canonical form: defaults filled in, options
// sorted and deduplicated, rootfs entries sorted by path, empty Env
// dropped to nil. Two specs meaning the same build render identically
// (and therefore digest identically) after Normalize.
func (s *Spec) Normalize() {
	if s.Monitor == "" {
		s.Monitor = DefaultMonitor
	}
	if s.Profile == "" {
		s.Profile = ProfileNoKML
	}
	if s.Hardening == "" {
		s.Hardening = attack.HardeningOff
	}
	seen := make(map[string]bool, len(s.Options))
	opts := s.Options[:0]
	for _, o := range s.Options {
		if o != "" && !seen[o] {
			seen[o] = true
			opts = append(opts, o)
		}
	}
	sort.Strings(opts)
	s.Options = opts
	sort.SliceStable(s.RootFS, func(i, j int) bool { return s.RootFS[i].Path < s.RootFS[j].Path })
	if len(s.Env) == 0 {
		s.Env = nil
	}
}

// Validate checks structural invariants. It does not resolve the app
// against the registry — that is the compiler's job.
func (s *Spec) Validate() error {
	if s.App == "" {
		return fmt.Errorf("bunny: spec with empty app")
	}
	if !validMonitors[s.Monitor] {
		return fmt.Errorf("bunny: %s: unknown monitor %q", s.App, s.Monitor)
	}
	if !validProfiles[s.Profile] {
		return fmt.Errorf("bunny: %s: unknown profile %q (nokml, kml or tiny)", s.App, s.Profile)
	}
	if _, err := attack.HardeningOptions(s.Hardening); err != nil {
		return fmt.Errorf("bunny: %s: %w", s.App, err)
	}
	for i := 1; i < len(s.Options); i++ {
		if s.Options[i] == s.Options[i-1] {
			return fmt.Errorf("bunny: %s: duplicate option %s", s.App, s.Options[i])
		}
		if s.Options[i] < s.Options[i-1] {
			return fmt.Errorf("bunny: %s: options not sorted (call Normalize)", s.App)
		}
	}
	for i, e := range s.RootFS {
		if e.Path == "" || !strings.HasPrefix(e.Path, "/") {
			return fmt.Errorf("bunny: %s: rootfs entry %d: path %q must be absolute", s.App, i, e.Path)
		}
		if i > 0 && e.Path == s.RootFS[i-1].Path {
			return fmt.Errorf("bunny: %s: duplicate rootfs entry %s", s.App, e.Path)
		}
	}
	return nil
}

// canonical renders the spec as a deterministic one-line string — the
// digest input. Env keys are emitted in sorted order, so digests never
// depend on map iteration.
func (s *Spec) canonical() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "app=%s|monitor=%s|profile=%s|hardening=%s|", s.App, s.Monitor, s.Profile, s.Hardening)
	sb.WriteString("options=")
	sb.WriteString(strings.Join(s.Options, ","))
	sb.WriteString("|env=")
	keys := make([]string, 0, len(s.Env))
	for k := range s.Env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s;", k, s.Env[k])
	}
	sb.WriteString("|rootfs=")
	for _, e := range s.RootFS {
		fmt.Fprintf(&sb, "%s:%o:%x;", e.Path, e.Mode, sha256.Sum256([]byte(e.Data)))
	}
	return sb.String()
}

// Digest content-addresses the spec: equal specs (after Normalize) have
// equal digests, and any semantic difference changes it.
func (s *Spec) Digest() string {
	h := sha256.Sum256([]byte(s.canonical()))
	return hex.EncodeToString(h[:])[:16]
}

// Marshal renders the spec as deterministic JSON (Go marshals map keys
// sorted, so Env order is stable).
func (s *Spec) Marshal() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(s, "", "  ")
}

// Parse reads a spec from JSON (first non-space byte '{') or bunnyfile
// text, normalizes and validates it.
func Parse(data []byte) (*Spec, error) {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		return ParseJSON(data)
	}
	return ParseText(data)
}

// ParseJSON reads a spec from its JSON form.
func ParseJSON(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("bunny: %w", err)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseText reads the bunnyfile text form: one "key: value" pair per
// line, '#' comments, blank lines ignored. Recognized keys:
//
//	app: redis
//	monitor: firecracker
//	profile: nokml
//	hardening: aslr
//	options: MULTIPROCESS SYSVIPC
//	env: HOME=/ PATH=/bin
//	rootfs: /etc/redis.conf=maxmemory 128mb
//
// options and env accumulate across repeated lines; each rootfs line
// adds one entry (path=contents, mode 0644).
func ParseText(data []byte) (*Spec, error) {
	s := &Spec{}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("bunny: line %d: want \"key: value\", got %q", ln+1, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "app":
			s.App = val
		case "monitor":
			s.Monitor = val
		case "profile":
			s.Profile = val
		case "hardening":
			s.Hardening = val
		case "options":
			s.Options = append(s.Options, strings.Fields(val)...)
		case "env":
			for _, kv := range strings.Fields(val) {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("bunny: line %d: env entry %q is not KEY=VALUE", ln+1, kv)
				}
				if s.Env == nil {
					s.Env = make(map[string]string)
				}
				s.Env[k] = v
			}
		case "rootfs":
			path, contents, ok := strings.Cut(val, "=")
			if !ok {
				return nil, fmt.Errorf("bunny: line %d: rootfs entry %q is not PATH=CONTENTS", ln+1, val)
			}
			s.RootFS = append(s.RootFS, Entry{Path: strings.TrimSpace(path), Data: contents})
		default:
			return nil, fmt.Errorf("bunny: line %d: unknown key %q", ln+1, key)
		}
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
