package bunny

import (
	"strings"
	"testing"

	"lupine/internal/ext2"
	"lupine/internal/faults"
	"lupine/internal/kerneldb"
	"lupine/internal/simclock"
)

func testCache(t *testing.T, capacity int) *Cache {
	t.Helper()
	return NewCache(kerneldb.MustLoad(), capacity)
}

func TestCompileHitAndMiss(t *testing.T) {
	c := testCache(t, 0)
	s := New("redis", "MULTIPROCESS")

	a, err := c.Compile(s, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheHit {
		t.Error("first compile reported a cache hit")
	}
	if a.Cost < kernelBuildBase {
		t.Errorf("first compile cost %v is below the kernel build base", a.Cost)
	}
	b, err := c.Compile(New("redis", "MULTIPROCESS"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.CacheHit {
		t.Error("identical spec missed the artifact cache")
	}
	if b.Uni != a.Uni {
		t.Error("cache hit returned a different unikernel")
	}
	if b.Cost >= a.Cost {
		t.Errorf("hit cost %v not cheaper than build cost %v", b.Cost, a.Cost)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss", st)
	}
}

// Two specs that differ only in rootfs entries are distinct artifacts
// but share the kernel image — the kernel-level sharing the artifact
// cache layers on.
func TestCompileSharesKernelAcrossRootfsVariants(t *testing.T) {
	c := testCache(t, 0)
	plain := New("redis")
	custom := New("redis")
	custom.RootFS = []Entry{{Path: "/etc/redis.conf", Data: "maxmemory 128mb"}}
	custom.Normalize()

	a, err := c.Compile(plain, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Compile(custom, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Error("distinct specs share an image digest")
	}
	if b.CacheHit {
		t.Error("distinct spec hit the artifact cache")
	}
	if !b.KernelShared {
		t.Error("rootfs-only variant did not share the kernel image")
	}
	if a.KernelID != b.KernelID {
		t.Error("rootfs-only variants report different kernel identities")
	}
	if a.Uni.Kernel != b.Uni.Kernel {
		t.Error("kernel image pointer not shared")
	}
	if b.Cost >= a.Cost {
		t.Errorf("kernel-shared build cost %v not cheaper than full build %v", b.Cost, a.Cost)
	}
	kst := c.Kernels().CacheStats()
	if kst.Hits != 1 || kst.Builds != 1 {
		t.Errorf("kernel cache stats = %+v, want 1 build + 1 hit", kst)
	}
}

func TestCompileFaultFallbacks(t *testing.T) {
	inj := faults.MustNew(faults.Plan{
		Seed: 1,
		Rules: []faults.Rule{
			// Spec-invalid is consulted every compile (hits 1..4 below);
			// cache-corrupt only on resident fetches (first consult is
			// compile 2).
			{Site: SiteCacheCorrupt, NthHit: 1},
			{Site: SiteSpecInvalid, NthHit: 3},
		},
	})
	c := testCache(t, 0)
	s := New("nginx")

	if _, err := c.Compile(s, inj, 0); err != nil { // build (no corrupt consult on miss)
		t.Fatal(err)
	}
	// Hit path: the checksum consult fires, the entry is evicted and the
	// request pays an accounted rebuild.
	a, err := c.Compile(New("nginx"), inj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheHit || a.Rebuilt != "cache-corrupt" {
		t.Errorf("corrupt fetch: hit=%v rebuilt=%q", a.CacheHit, a.Rebuilt)
	}
	// The spec-invalid consult (3rd hit of that site across compiles)
	// forces a rebuild even though the rebuilt artifact is resident again.
	b, err := c.Compile(New("nginx"), inj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.CacheHit || b.Rebuilt != "spec-invalid" {
		t.Errorf("invalid spec: hit=%v rebuilt=%q", b.CacheHit, b.Rebuilt)
	}
	st := c.Stats()
	if st.CorruptRebuilds != 1 || st.InvalidRetries != 1 {
		t.Errorf("stats = %+v, want 1 corrupt rebuild + 1 invalid retry", st)
	}
	// Clean run afterwards hits again.
	d, err := c.Compile(New("nginx"), inj, simclock.Time(simclock.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !d.CacheHit {
		t.Error("post-storm compile missed")
	}
}

func TestCompileCapacityEviction(t *testing.T) {
	c := testCache(t, 2)
	for _, app := range []string{"redis", "nginx", "memcached"} {
		if _, err := c.Compile(New(app), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("resident %d artifacts, want capacity 2", c.Len())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// The evicted (LRU) artifact was redis; recompiling is a miss.
	a, err := c.Compile(New("redis"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheHit {
		t.Error("evicted artifact served a hit")
	}
}

func TestCompileUnknownApp(t *testing.T) {
	c := testCache(t, 0)
	if _, err := c.Compile(New("doom"), nil, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown application") {
		t.Errorf("err = %v, want unknown application", err)
	}
}

// The overlay tree lands entries at /overlay with paths preserved, and
// the profile flags select the variant.
func TestCompileOverlayAndProfiles(t *testing.T) {
	c := testCache(t, 0)
	s := New("redis")
	s.RootFS = []Entry{{Path: "/etc/conf.d/redis.conf", Data: "save 60 1"}}
	s.Normalize()
	a, err := c.Compile(s, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := ext2.ReadImage(a.Uni.RootFS)
	if err != nil {
		t.Fatal(err)
	}
	f := tree.Lookup("/overlay/etc/conf.d/redis.conf")
	if f == nil || string(f.Data) != "save 60 1" {
		t.Fatalf("overlay entry = %+v", f)
	}

	tiny := New("redis")
	tiny.Profile = ProfileTiny
	b, err := c.Compile(tiny, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Uni.Kernel == a.Uni.Kernel {
		t.Error("tiny profile shared the nokml kernel")
	}
	if b.Uni.Kernel.Size >= a.Uni.Kernel.Size {
		t.Error("tiny kernel is not smaller")
	}
	kml := New("redis")
	kml.Profile = ProfileKML
	k, err := c.Compile(kml, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Uni.Kernel.KML() {
		t.Error("kml profile did not enable KERNEL_MODE_LINUX")
	}
}
