package bunny

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"lupine/internal/apps"
	"lupine/internal/attack"
	"lupine/internal/core"
	"lupine/internal/ext2"
	"lupine/internal/faults"
	"lupine/internal/guest"
	"lupine/internal/kerneldb"
	"lupine/internal/simclock"
	"lupine/internal/snapshot"
)

// Build-pipeline fault-injection sites.
const (
	// SiteSpecInvalid fires when the pipeline's spec re-validation
	// spuriously rejects a normalized spec (flaky toolchain metadata);
	// the compiler re-normalizes and falls back to a full, accounted
	// rebuild instead of trusting any cached artifact.
	SiteSpecInvalid = "build/spec-invalid"
	// SiteCacheCorrupt fails a cached artifact's checksum at fetch time;
	// the entry is evicted and the request pays a full, accounted
	// rebuild.
	SiteCacheCorrupt = "build/cache-corrupt"
)

func init() {
	faults.RegisterSite(SiteSpecInvalid, "build",
		"spec re-validation spuriously rejects a normalized spec; the request falls back to a full rebuild")
	faults.RegisterSite(SiteCacheCorrupt, "build",
		"a cached image artifact fails its checksum at fetch; the entry is evicted and rebuilt")
}

// The build cost model, in virtual time. A kernel build dominates (the
// `make bzImage` of Figure 2, priced per megabyte of produced image); a
// rootfs serialization is cheap; an artifact cache hit costs only the
// content-addressed fetch plus its checksum.
const (
	kernelBuildBase  = 40 * simclock.Millisecond // configure + headers + irreducible core
	kernelBuildPerMB = 15 * simclock.Millisecond // compile + link, per MB of image
	rootfsBuildPerMB = 3 * simclock.Millisecond  // ext2 serialization, per MB of image
	artifactFetch    = 150 * simclock.Microsecond
	checksumCost     = 50 * simclock.Microsecond
	revalidateCost   = 1 * simclock.Millisecond // re-normalizing a rejected spec
)

// Artifact is one compiled image: the unikernel plus the build-cache
// verdict for the request that produced it.
type Artifact struct {
	Spec     *Spec
	Digest   string // content address: (spec digest, kerneldb version)
	KernelID string // kernel identity (snapshot.KernelKey) — the fleet's handle

	Uni *core.Unikernel

	CacheHit     bool              // served from the digest-addressed artifact cache
	KernelShared bool              // artifact built, but the kernel image came from the kernel cache
	Cost         simclock.Duration // priced virtual build work for this request
	Rebuilt      string            // "" or the fault site that forced a rebuild
}

// CacheStats is the artifact cache's ledger.
type CacheStats struct {
	Hits            int
	Misses          int // artifact builds (fault-forced rebuilds included)
	Evictions       int // capacity evictions (corrupt evictions count separately)
	CorruptRebuilds int // cache-corrupt fallbacks: evict + rebuild
	InvalidRetries  int // spec-invalid fallbacks: re-normalize + rebuild
}

// HitRate is the fraction of compile requests served from cache.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is the digest-addressed image cache over the kernel-sharing
// core.KernelCache: the full build cache of the declarative pipeline.
// Two layers, two sharing granularities — identical specs share the
// whole image artifact; different specs resolving to the same kernel
// identity still share the kernel build and pay only for their rootfs.
type Cache struct {
	db      *kerneldb.DB
	kernels *core.KernelCache

	mu       sync.Mutex
	arts     map[string]*artEntry
	tick     int
	capacity int // max resident artifacts; 0 = unbounded

	st CacheStats
}

type artEntry struct {
	uni      *core.Unikernel
	kernelID string
	lastUse  int
}

// NewCache returns an empty build cache over the option database.
// capacity bounds resident artifacts (0 = unbounded); overflow evicts
// LRU entries deterministically.
func NewCache(db *kerneldb.DB, capacity int) *Cache {
	return &Cache{
		db:       db,
		kernels:  core.NewKernelCache(db),
		arts:     make(map[string]*artEntry),
		capacity: capacity,
	}
}

// Kernels exposes the kernel-sharing layer (for its own hit/miss/evict
// ledger).
func (c *Cache) Kernels() *core.KernelCache { return c.kernels }

// Stats reports the artifact-cache ledger.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// Len reports resident artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.arts)
}

// ImageDigest is the content address of the image a spec compiles to:
// the spec digest crossed with the kernel tree version, so a kernel tree
// change invalidates every cached artifact.
func (c *Cache) ImageDigest(s *Spec) string {
	h := sha256.Sum256([]byte(s.Digest() + "|" + c.db.Version()))
	return hex.EncodeToString(h[:])[:16]
}

// Compile builds the spec's image through kconfig→kbuild→rootfs, served
// from the artifact cache when the digest is resident. Fault sites can
// reject the spec's re-validation or corrupt a cached artifact; both
// fall back to full rebuilds with the wasted work accounted in Cost.
// inj may be nil; now prices fault windows.
func (c *Cache) Compile(s *Spec, inj *faults.Injector, now simclock.Time) (*Artifact, error) {
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	digest := c.ImageDigest(s)
	art := &Artifact{Spec: s, Digest: digest}

	// The pipeline re-validates the normalized spec before trusting any
	// cached artifact; a seeded rejection forces the full rebuild path.
	forceRebuild := false
	if d := inj.Hit(SiteSpecInvalid, now); d.Fire {
		forceRebuild = true
		art.Rebuilt = "spec-invalid"
		art.Cost += revalidateCost
		c.mu.Lock()
		c.st.InvalidRetries++
		c.mu.Unlock()
	}

	c.mu.Lock()
	e, resident := c.arts[digest]
	if resident && !forceRebuild {
		// Fetch is checksummed; a corrupt artifact is evicted and rebuilt.
		if d := inj.Hit(SiteCacheCorrupt, now); d.Fire {
			delete(c.arts, digest)
			c.st.CorruptRebuilds++
			art.Rebuilt = "cache-corrupt"
			art.Cost += checksumCost
		} else {
			c.st.Hits++
			c.tick++
			e.lastUse = c.tick
			c.mu.Unlock()
			art.Uni = e.uni
			art.KernelID = e.kernelID
			art.CacheHit = true
			art.Cost += artifactFetch + checksumCost
			return art, nil
		}
	}
	c.st.Misses++
	c.mu.Unlock()

	coreSpec, opts, err := c.lower(s)
	if err != nil {
		return nil, err
	}
	kb, _ := c.kernels.Stats()
	u, err := c.kernels.Build(coreSpec, opts)
	if err != nil {
		return nil, err
	}
	ka, _ := c.kernels.Stats()
	art.Uni = u
	art.KernelID = snapshot.KernelKey(u.Kernel)
	art.KernelShared = ka == kb // kernel came from the kernel cache
	art.Cost += rootfsCost(len(u.RootFS))
	if art.KernelShared {
		art.Cost += artifactFetch // the shared kernel image is fetched, not compiled
	} else {
		art.Cost += kernelBuildBase +
			simclock.Duration(float64(kernelBuildPerMB)*u.Kernel.MegabytesMB())
	}

	c.mu.Lock()
	c.tick++
	c.arts[digest] = &artEntry{uni: u, kernelID: art.KernelID, lastUse: c.tick}
	c.evictOverflow()
	c.mu.Unlock()
	return art, nil
}

// rootfsCost prices serializing an ext2 image of n bytes.
func rootfsCost(n int) simclock.Duration {
	return simclock.Duration(float64(rootfsBuildPerMB) * float64(n) / (1 << 20))
}

// evictOverflow drops LRU artifacts beyond capacity. Caller holds mu.
func (c *Cache) evictOverflow() {
	if c.capacity <= 0 || len(c.arts) <= c.capacity {
		return
	}
	type cand struct {
		key string
		e   *artEntry
	}
	cands := make([]cand, 0, len(c.arts))
	for k, e := range c.arts {
		cands = append(cands, cand{k, e})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].e.lastUse != cands[j].e.lastUse {
			return cands[i].e.lastUse < cands[j].e.lastUse
		}
		return cands[i].key < cands[j].key
	})
	for _, cd := range cands {
		if len(c.arts) <= c.capacity {
			break
		}
		delete(c.arts, cd.key)
		c.st.Evictions++
	}
}

// lower resolves the spec against the application registry into the
// imperative core build inputs: manifest plus spec options, container
// image plus overlay entries, and the variant flags of the profile.
func (c *Cache) lower(s *Spec) (core.Spec, core.BuildOpts, error) {
	a, err := apps.Lookup(s.App)
	if err != nil {
		return core.Spec{}, core.BuildOpts{}, fmt.Errorf("bunny: %w", err)
	}
	m := a.Manifest()
	m.AddOptions(s.Options...)
	for k, v := range s.Env {
		m.Env[k] = v
	}
	img := a.ContainerImage()
	for k, v := range s.Env {
		img.Env[k] = v
	}
	if len(s.RootFS) > 0 {
		img.Extra = append(img.Extra, overlayTree(s.RootFS))
	}
	hardening, err := attack.HardeningOptions(s.Hardening)
	if err != nil {
		return core.Spec{}, core.BuildOpts{}, fmt.Errorf("bunny: %s: %w", s.App, err)
	}
	opts := core.BuildOpts{
		Name:         "bunny-" + s.App,
		KML:          s.Profile == ProfileKML,
		Tiny:         s.Profile == ProfileTiny,
		ExtraOptions: hardening,
	}
	return core.Spec{
		Manifest: m,
		Image:    img,
		Program:  func(p *guest.Proc, probeOnly bool) int { return a.Main(p, probeOnly) },
	}, opts, nil
}

// overlayTree builds the /overlay directory carrying the spec's extra
// rootfs entries with their paths preserved ("/etc/redis.conf" lands at
// /overlay/etc/redis.conf, the way bunny packages config overlays).
func overlayTree(entries []Entry) *ext2.File {
	root := ext2.NewDir("overlay")
	for _, e := range entries {
		dir := root
		parts := strings.Split(strings.TrimPrefix(e.Path, "/"), "/")
		for _, p := range parts[:len(parts)-1] {
			next := dir.Child(p)
			if next == nil {
				next = ext2.NewDir(p)
				dir.Children = append(dir.Children, next)
			}
			dir = next
		}
		mode := uint16(e.Mode)
		if mode == 0 {
			mode = 0o644
		}
		dir.Children = append(dir.Children, ext2.NewFile(parts[len(parts)-1], mode, []byte(e.Data)))
	}
	return root
}
