package bunny

import (
	"testing"

	"lupine/internal/attack"
)

// TestHardeningRoundTrip: the hardening field survives both spec forms,
// defaults to off, and rejects unknown levels.
func TestHardeningRoundTrip(t *testing.T) {
	s, err := ParseText([]byte("app: redis\nhardening: aslr\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Hardening != attack.HardeningASLR {
		t.Fatalf("text form lost hardening: %q", s.Hardening)
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hardening != attack.HardeningASLR || back.Digest() != s.Digest() {
		t.Fatalf("JSON round trip changed the spec: %q digest %s vs %s",
			back.Hardening, back.Digest(), s.Digest())
	}

	if d := New("redis"); d.Hardening != attack.HardeningOff {
		t.Fatalf("default hardening %q, want off", d.Hardening)
	}

	bad := New("redis")
	bad.Hardening = "paranoid"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown hardening level must fail validation")
	}
}

// TestHardeningDigestAndBuild: hardening is a semantic spec difference —
// distinct digests, distinct artifacts — and the compiled image really
// carries the mitigation options (priced, visible to attack.FromImage).
func TestHardeningDigestAndBuild(t *testing.T) {
	off := New("redis")
	full := New("redis")
	full.Hardening = attack.HardeningFull
	full.Normalize()
	if off.Digest() == full.Digest() {
		t.Fatal("hardening levels must not share a digest")
	}
	// An explicit "off" means the same build as the default.
	explicit := New("redis")
	explicit.Hardening = attack.HardeningOff
	explicit.Normalize()
	if explicit.Digest() != off.Digest() {
		t.Fatal("explicit off and default must digest identically")
	}

	c := testCache(t, 0)
	aOff, err := c.Compile(off, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	aFull, err := c.Compile(full, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if aOff.KernelID == aFull.KernelID {
		t.Fatal("hardened build must be a distinct kernel identity")
	}
	sOff, sFull := attack.FromImage(aOff.Uni.Kernel), attack.FromImage(aFull.Uni.Kernel)
	if sOff.ASLR || sOff.WX {
		t.Fatalf("unhardened surface reports mitigations: %+v", sOff)
	}
	if !sFull.ASLR || !sFull.WX {
		t.Fatalf("hardened surface missing mitigations: %+v", sFull)
	}
	if aFull.Uni.Kernel.BootOptionCost <= aOff.Uni.Kernel.BootOptionCost {
		t.Fatalf("hardening must cost boot time: full %v vs off %v",
			aFull.Uni.Kernel.BootOptionCost, aOff.Uni.Kernel.BootOptionCost)
	}
	if aFull.Uni.Kernel.Size <= aOff.Uni.Kernel.Size {
		t.Fatalf("hardening must cost image size: full %d vs off %d",
			aFull.Uni.Kernel.Size, aOff.Uni.Kernel.Size)
	}
}
