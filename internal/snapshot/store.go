package snapshot

import "sync"

// Store caches snapshots content-addressed by kernel identity and
// monitor, the way core.KernelCache shares kernel images: a fleet running
// many VMs of the same specialized kernel needs exactly one snapshot, and
// every scale-out restore after the first capture is a cache hit — the
// MultiK observation applied to warm state instead of build artifacts.
type Store struct {
	mu       sync.Mutex
	snaps    map[string]*Snapshot
	captures int
	hits     int
	misses   int
}

// NewStore returns an empty snapshot store.
func NewStore() *Store {
	return &Store{snaps: make(map[string]*Snapshot)}
}

func storeKey(kernel, monitor string) string { return kernel + "@" + monitor }

// Put caches a captured snapshot, replacing any previous capture of the
// same kernel under the same monitor.
func (st *Store) Put(s *Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.captures++
	st.snaps[storeKey(s.Kernel, s.Monitor)] = s
}

// Get looks up the snapshot for a kernel identity under a monitor.
func (st *Store) Get(kernel, monitor string) (*Snapshot, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.snaps[storeKey(kernel, monitor)]
	if ok {
		st.hits++
	} else {
		st.misses++
	}
	return s, ok
}

// GetOrCapture returns the cached snapshot or captures one through the
// callback and caches it. The callback runs outside the lock-free fast
// path only on a miss, so N identical kernels pay one capture.
func (st *Store) GetOrCapture(kernel, monitor string, capture func() (*Snapshot, error)) (*Snapshot, error) {
	if s, ok := st.Get(kernel, monitor); ok {
		return s, nil
	}
	s, err := capture()
	if err != nil {
		return nil, err
	}
	st.Put(s)
	return s, nil
}

// Stats reports captures stored and lookup hits/misses.
func (st *Store) Stats() (captures, hits, misses int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.captures, st.hits, st.misses
}
