package snapshot

import (
	"sort"
	"sync"
)

// Store caches snapshots content-addressed by kernel identity and
// monitor, the way core.KernelCache shares kernel images: a fleet running
// many VMs of the same specialized kernel needs exactly one snapshot, and
// every scale-out restore after the first capture is a cache hit — the
// MultiK observation applied to warm state instead of build artifacts.
//
// Cached artifacts are host-resident memory files, so the store is also a
// reclaim target: under pressure, EvictCold drops the least-recently-used
// artifacts (a future restore of that kernel pays a fresh capture).
type Store struct {
	mu           sync.Mutex
	snaps        map[string]*storeEntry
	tick         int // monotonic use counter driving LRU order
	captures     int
	hits         int
	misses       int
	evictions    int
	evictedBytes int64
}

type storeEntry struct {
	snap    *Snapshot
	lastUse int
}

// NewStore returns an empty snapshot store.
func NewStore() *Store {
	return &Store{snaps: make(map[string]*storeEntry)}
}

func storeKey(kernel, monitor string) string { return kernel + "@" + monitor }

// Key renders the store key for a kernel identity under a monitor — the
// handle EvictCold pinning uses.
func Key(kernel, monitor string) string { return storeKey(kernel, monitor) }

// Put caches a captured snapshot, replacing any previous capture of the
// same kernel under the same monitor.
func (st *Store) Put(s *Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.captures++
	st.tick++
	st.snaps[storeKey(s.Kernel, s.Monitor)] = &storeEntry{snap: s, lastUse: st.tick}
}

// Get looks up the snapshot for a kernel identity under a monitor.
func (st *Store) Get(kernel, monitor string) (*Snapshot, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.snaps[storeKey(kernel, monitor)]
	if ok {
		st.hits++
		st.tick++
		e.lastUse = st.tick
		return e.snap, true
	}
	st.misses++
	return nil, false
}

// Peek looks a snapshot up without touching LRU order or hit/miss
// accounting — placement checks that only ask "is a replica here?"
// must not perturb the eviction order a real restore would see.
func (st *Store) Peek(kernel, monitor string) (*Snapshot, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.snaps[storeKey(kernel, monitor)]
	if !ok {
		return nil, false
	}
	return e.snap, true
}

// GetOrCapture returns the cached snapshot or captures one through the
// callback and caches it. The callback runs outside the lock-free fast
// path only on a miss, so N identical kernels pay one capture.
func (st *Store) GetOrCapture(kernel, monitor string, capture func() (*Snapshot, error)) (*Snapshot, error) {
	if s, ok := st.Get(kernel, monitor); ok {
		return s, nil
	}
	s, err := capture()
	if err != nil {
		return nil, err
	}
	st.Put(s)
	return s, nil
}

// Resident reports the host bytes the cached artifacts occupy: each
// snapshot's memory file is its base RSS.
func (st *Store) Resident() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var total int64
	for _, e := range st.snaps {
		total += e.snap.BaseRSS
	}
	return total
}

// EvictCold drops least-recently-used artifacts until at least need
// bytes are freed or no evictable artifact remains, and reports the
// bytes actually freed. Keys listed in pinned (see Key) are skipped —
// the artifact actively backing a clone set must survive, since its
// pages are mapped into running guests. Ties in last use break on key
// order, so eviction is deterministic.
func (st *Store) EvictCold(need int64, pinned ...string) int64 {
	if need <= 0 {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	keep := make(map[string]bool, len(pinned))
	for _, k := range pinned {
		keep[k] = true
	}
	type cand struct {
		key string
		e   *storeEntry
	}
	var cands []cand
	for k, e := range st.snaps {
		if !keep[k] {
			cands = append(cands, cand{k, e})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].e.lastUse != cands[j].e.lastUse {
			return cands[i].e.lastUse < cands[j].e.lastUse
		}
		return cands[i].key < cands[j].key
	})
	var freed int64
	for _, c := range cands {
		if freed >= need {
			break
		}
		delete(st.snaps, c.key)
		st.evictions++
		st.evictedBytes += c.e.snap.BaseRSS
		freed += c.e.snap.BaseRSS
	}
	return freed
}

// Evictions reports how many artifacts pressure evicted, and their bytes.
func (st *Store) Evictions() (count int, bytes int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.evictions, st.evictedBytes
}

// Stats reports captures stored and lookup hits/misses.
func (st *Store) Stats() (captures, hits, misses int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.captures, st.hits, st.misses
}
