// Package snapshot is the snapshot/restore plane over booted guests: the
// production microVM trick (Firecracker's snapshot API) that turns the
// paper's per-boot costs — §4.3 boot time, §4.4 memory footprint — into
// one-time costs paid at capture. A Snapshot is a deterministic,
// content-addressed capture of a booted guest's state: the kernel's
// configuration identity, the boot timeline it short-circuits, and the
// post-init subsystem tables and resident memory from internal/guest.
// Restore() produces a running clone in virtual-time microseconds by
// skipping every boot.Phase except the monitor handoff and lazily mapping
// the memory file back in; copy-on-write accounting (CloneSet) lets N
// restored clones share the base image's RSS and pay only for the pages
// they dirty.
package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"lupine/internal/boot"
	"lupine/internal/faults"
	"lupine/internal/guest"
	"lupine/internal/kbuild"
	"lupine/internal/simclock"
	"lupine/internal/telemetry"
	"lupine/internal/vmm"
)

// Snapshot-owned fault-injection sites.
const (
	// SiteCorrupt fails the artifact checksum when a restore loads the
	// snapshot; the restore falls back to a cold boot.
	SiteCorrupt = "snapshot/corrupt"
	// SiteRestoreFail kills the restore mid-flight (the memory mapping or
	// device re-attach fails); the restore falls back to a cold boot
	// after paying for the doomed attempt.
	SiteRestoreFail = "snapshot/restore-fail"
)

func init() {
	faults.RegisterSite(SiteCorrupt, "snapshot",
		"a snapshot artifact fails its checksum at restore; the launch falls back to a cold boot")
	faults.RegisterSite(SiteRestoreFail, "snapshot",
		"a restore dies mid-flight after the artifact loaded; the launch falls back to a cold boot")
}

// Restore cost model: the restoring monitor is pre-warmed (the jailer
// process already exists), the guest memory file is mmap'd lazily, and no
// kernel init runs — which is why restore lands in microseconds where
// cold boots land in milliseconds.
const (
	restoreHandoffCost = 150 * simclock.Microsecond // monitor re-attach + vCPU state load
	restoreMapPerMB    = 2 * simclock.Microsecond   // lazy mmap of the memory file, per MB of base RSS
)

// ErrUnsupported marks monitors without a snapshot/restore story
// (solo5-hvt, uhyve: the comparators must always cold boot, §6.2).
var ErrUnsupported = errors.New("snapshot: monitor does not support snapshot/restore")

// Snapshot is one captured guest, content-addressed by everything that
// determines the restored machine.
type Snapshot struct {
	ID        string            // content address over kernel, monitor and state
	Kernel    string            // kernel configuration identity (KernelKey)
	Monitor   string            // monitor the guest ran under
	BootTotal simclock.Duration // the cold-boot timeline this snapshot short-circuits
	State     guest.State       // post-init subsystem tables + memory accounting
	BaseRSS   int64             // resident bytes the restore maps back in (shared across clones)
}

// KernelKey identifies a kernel build by the things that determine the
// binary: name, optimization level, and the full resolved configuration.
func KernelKey(img *kbuild.Image) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|", img.Name, img.Opt)
	for _, n := range img.Config.Names() {
		fmt.Fprintf(h, "%s=%s;", n, img.Config.Get(n))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Capture snapshots a booted guest: the kernel identity, the boot report
// that produced it, and the guest's post-init state. It fails for
// monitors without snapshot support. Deterministic: the same booted state
// always yields the same ID.
func Capture(img *kbuild.Image, mon *vmm.Monitor, rep boot.Report, g *guest.Kernel) (*Snapshot, error) {
	if img == nil || mon == nil || g == nil {
		return nil, fmt.Errorf("snapshot: nil image, monitor or guest")
	}
	if !mon.Snapshots {
		return nil, fmt.Errorf("%w: %s", ErrUnsupported, mon.Name)
	}
	st := g.State()
	s := &Snapshot{
		Kernel:    KernelKey(img),
		Monitor:   mon.Name,
		BootTotal: rep.Total,
		State:     st,
		BaseRSS:   st.MemUsed,
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%d|%s", s.Kernel, s.Monitor, int64(s.BootTotal), st.Digest())
	s.ID = hex.EncodeToString(h.Sum(nil))[:16]
	return s, nil
}

// RestoreCost is the virtual time a clean restore takes: monitor handoff
// plus the lazy mapping of the base RSS. Every other boot phase — kernel
// load, early init, timer calibration, subsystem init, rootfs mount, the
// init script — is skipped: the snapshot already contains their results.
func (s *Snapshot) RestoreCost() simclock.Duration {
	mapCost := simclock.Duration(float64(restoreMapPerMB) * float64(s.BaseRSS) / 1e6)
	return restoreHandoffCost + mapCost
}

// RestoreResult reports how one launch-from-snapshot went.
type RestoreResult struct {
	Ready    simclock.Duration // latency to a serving VM (fallback cost included)
	Restored bool              // true: served from the snapshot; false: cold-boot fallback
	Detail   string            // why a fallback happened ("" on a clean restore)
}

// Restore produces a running clone at virtual time now. Fault sites can
// corrupt the artifact or kill the restore mid-flight; either way the
// launch falls back to a cold boot of coldBoot duration, with the wasted
// restore work accounted explicitly in Ready. A monitor without snapshot
// support always cold boots.
func (s *Snapshot) Restore(mon *vmm.Monitor, inj *faults.Injector, now simclock.Time, coldBoot simclock.Duration) RestoreResult {
	if mon != nil && !mon.Snapshots {
		return RestoreResult{Ready: coldBoot, Detail: fmt.Sprintf("monitor %s cannot restore", mon.Name)}
	}
	// Checksum check happens before any guest state is touched.
	if d := inj.Hit(SiteCorrupt, now); d.Fire {
		return RestoreResult{
			Ready:  restoreHandoffCost + coldBoot, // the doomed load, then the cold path
			Detail: fmt.Sprintf("snapshot %s failed checksum (offset %d)", s.ID, d.Param),
		}
	}
	cost := s.RestoreCost()
	if d := inj.Hit(SiteRestoreFail, now.Add(cost)); d.Fire {
		return RestoreResult{
			Ready:  cost + coldBoot, // full restore attempt wasted, then the cold path
			Detail: fmt.Sprintf("restore of %s died mid-flight", s.ID),
		}
	}
	return RestoreResult{Ready: cost, Restored: true}
}

// RestoreObserved is Restore plus a trace span on track: "restore" for a
// clean restore, "restore-fallback" when the launch degraded to a cold
// boot, covering [now, now+Ready). Nil-tracer safe.
func (s *Snapshot) RestoreObserved(mon *vmm.Monitor, inj *faults.Injector, now simclock.Time, coldBoot simclock.Duration, tr *telemetry.Tracer, track string) RestoreResult {
	rr := s.Restore(mon, inj, now, coldBoot)
	if tr != nil {
		name := "restore"
		if !rr.Restored {
			name = "restore-fallback"
		}
		tr.Span("snapshot", track, name, now, now.Add(rr.Ready),
			telemetry.A("snapshot", s.ID),
			telemetry.A("detail", rr.Detail))
	}
	return rr
}
