package snapshot

import "sort"

// Copy-on-write page accounting: restored clones map the snapshot's
// memory file shared, so the base RSS is charged once per host no matter
// how many clones run; each clone pays only for the pages it dirties.
// This is what makes snapshot scale-out cheaper than N cold boots in
// aggregate memory, not just in time-to-capacity.

const pageSize = 4096

// CloneSet tracks one snapshot's base pages and every clone restored
// from it.
type CloneSet struct {
	base     int64 // shared resident bytes, charged once
	clones   []*Clone
	released int
}

// NewCloneSet starts accounting over a base RSS (rounded up to pages).
func NewCloneSet(baseRSS int64) *CloneSet {
	return &CloneSet{base: roundPages(baseRSS)}
}

// Clone is one restored VM's private page accounting. Private pages come
// in two kinds: dirty (anonymous writes, unreclaimable short of killing
// the clone) and clean (private page cache the balloon can drop and
// re-fault later).
type Clone struct {
	set      *CloneSet
	dirty    int64
	clean    int64
	released bool
}

// Clone registers a new restored VM sharing the base pages.
func (cs *CloneSet) Clone() *Clone {
	c := &Clone{set: cs}
	cs.clones = append(cs.clones, c)
	return c
}

// Touch dirties n bytes (page-granular): the clone now owns private
// copies of those pages. Released clones no longer own pages to dirty.
func (c *Clone) Touch(n int64) {
	if n > 0 && !c.released {
		c.dirty += roundPages(n)
	}
}

// Cache adds n bytes (page-granular) of private clean page cache —
// resident, but droppable under pressure via Reclaim.
func (c *Clone) Cache(n int64) {
	if n > 0 && !c.released {
		c.clean += roundPages(n)
	}
}

// Reclaim drops up to n bytes of the clone's clean pages (balloon-style)
// and reports how many bytes were actually freed.
func (c *Clone) Reclaim(n int64) int64 {
	if n <= 0 || c.released {
		return 0
	}
	got := roundPages(n)
	if got > c.clean {
		got = c.clean
	}
	c.clean -= got
	return got
}

// Release returns the clone's private pages to the host when its VM is
// drained or killed, and reports the bytes freed. It is idempotent; a
// released clone stops counting toward AggregateRSS, which otherwise
// grows monotonically as fleets scale up and down.
func (c *Clone) Release() int64 {
	if c.released {
		return 0
	}
	freed := c.dirty + c.clean
	c.dirty, c.clean = 0, 0
	c.released = true
	c.set.released++
	return freed
}

// Released reports whether the clone's VM is gone and its pages freed.
func (c *Clone) Released() bool { return c.released }

// Dirty reports the clone's private dirty (unreclaimable) bytes.
func (c *Clone) Dirty() int64 { return c.dirty }

// Clean reports the clone's private clean (reclaimable) bytes.
func (c *Clone) Clean() int64 { return c.clean }

// RSS is what this clone is charged: its private pages only — the base
// is shared with every sibling.
func (c *Clone) RSS() int64 { return c.dirty + c.clean }

// Clones reports how many clones were ever restored from the base.
func (cs *CloneSet) Clones() int { return len(cs.clones) }

// Active reports how many clones still hold private pages (not released).
func (cs *CloneSet) Active() int { return len(cs.clones) - cs.released }

// SharedBase reports the base resident bytes charged once for the set.
func (cs *CloneSet) SharedBase() int64 { return cs.base }

// PrivateRSS sums the live clones' private bytes — the part of the
// aggregate that is not the shared base.
func (cs *CloneSet) PrivateRSS() int64 {
	var total int64
	for _, c := range cs.clones {
		total += c.dirty + c.clean
	}
	return total
}

// CleanRSS sums the live clones' reclaimable clean bytes.
func (cs *CloneSet) CleanRSS() int64 {
	var total int64
	for _, c := range cs.clones {
		total += c.clean
	}
	return total
}

// ReclaimClean drops up to n bytes of clean pages across the set,
// largest holders first (deterministic: ties break on clone age), and
// reports the bytes freed — the CoW-plane half of a balloon pass.
func (cs *CloneSet) ReclaimClean(n int64) int64 {
	if n <= 0 {
		return 0
	}
	order := make([]*Clone, len(cs.clones))
	copy(order, cs.clones)
	sort.SliceStable(order, func(i, j int) bool { return order[i].clean > order[j].clean })
	var freed int64
	for _, c := range order {
		if freed >= n {
			break
		}
		freed += c.Reclaim(n - freed)
	}
	return freed
}

// AggregateRSS is the host-side truth: the shared base plus every live
// clone's private pages. Compare against Clones() x coldRSS to price
// what copy-on-write saves.
func (cs *CloneSet) AggregateRSS() int64 {
	return cs.base + cs.PrivateRSS()
}

func roundPages(n int64) int64 {
	return (n + pageSize - 1) / pageSize * pageSize
}
