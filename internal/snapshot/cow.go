package snapshot

// Copy-on-write page accounting: restored clones map the snapshot's
// memory file shared, so the base RSS is charged once per host no matter
// how many clones run; each clone pays only for the pages it dirties.
// This is what makes snapshot scale-out cheaper than N cold boots in
// aggregate memory, not just in time-to-capacity.

const pageSize = 4096

// CloneSet tracks one snapshot's base pages and every clone restored
// from it.
type CloneSet struct {
	base   int64 // shared resident bytes, charged once
	clones []*Clone
}

// NewCloneSet starts accounting over a base RSS (rounded up to pages).
func NewCloneSet(baseRSS int64) *CloneSet {
	return &CloneSet{base: roundPages(baseRSS)}
}

// Clone is one restored VM's private page accounting.
type Clone struct {
	set   *CloneSet
	dirty int64
}

// Clone registers a new restored VM sharing the base pages.
func (cs *CloneSet) Clone() *Clone {
	c := &Clone{set: cs}
	cs.clones = append(cs.clones, c)
	return c
}

// Touch dirties n bytes (page-granular): the clone now owns private
// copies of those pages.
func (c *Clone) Touch(n int64) {
	if n > 0 {
		c.dirty += roundPages(n)
	}
}

// Dirty reports the clone's private resident bytes.
func (c *Clone) Dirty() int64 { return c.dirty }

// RSS is what this clone is charged: its dirty pages only — the base is
// shared with every sibling.
func (c *Clone) RSS() int64 { return c.dirty }

// Clones reports how many clones share the base.
func (cs *CloneSet) Clones() int { return len(cs.clones) }

// SharedBase reports the base resident bytes charged once for the set.
func (cs *CloneSet) SharedBase() int64 { return cs.base }

// AggregateRSS is the host-side truth: the shared base plus every
// clone's dirty pages. Compare against Clones() x coldRSS to price what
// copy-on-write saves.
func (cs *CloneSet) AggregateRSS() int64 {
	total := cs.base
	for _, c := range cs.clones {
		total += c.dirty
	}
	return total
}

func roundPages(n int64) int64 {
	return (n + pageSize - 1) / pageSize * pageSize
}
