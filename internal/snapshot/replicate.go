package snapshot

import (
	"lupine/internal/simclock"
)

// Cross-region snapshot replication. A region that captured a warm
// snapshot ships it to peer regions' stores ahead of need, so that when
// a whole region dies its survivors evacuate by restoring local replicas
// in microseconds instead of cold-booting in milliseconds — the paper's
// warm-boot economics applied as a disaster-recovery primitive. The
// Replicator prices each copy at the inter-region trunk's bandwidth and
// keeps the byte/time ledger the regionfail table reports; the caller
// owns scheduling (the replica becomes visible when it Puts the snapshot
// into the destination store at the transfer's completion instant).

// Replicator accounts snapshot copies between region stores.
type Replicator struct {
	// Bandwidth is the replication path's throughput in bytes per
	// virtual second; 0 means the copy is instantaneous.
	Bandwidth int64

	copies int
	bytes  int64
	spent  simclock.Duration
}

// ReplStats is the replication ledger.
type ReplStats struct {
	Copies int               // snapshot transfers completed or in flight
	Bytes  int64             // artifact bytes shipped across regions
	Spent  simclock.Duration // summed virtual transfer time
}

// NewReplicator returns a replicator pricing copies at bw bytes per
// virtual second (0 = instant).
func NewReplicator(bw int64) *Replicator { return &Replicator{Bandwidth: bw} }

// Cost prices shipping s without accounting it.
func (r *Replicator) Cost(s *Snapshot) simclock.Duration {
	if r.Bandwidth <= 0 || s.BaseRSS <= 0 {
		return 0
	}
	return simclock.Duration(s.BaseRSS * int64(simclock.Second) / r.Bandwidth)
}

// Replicate accounts one copy of s and returns the transfer duration;
// the caller schedules the destination store's Put(s) at now+duration,
// at which point the replica is restorable in that region.
func (r *Replicator) Replicate(s *Snapshot) simclock.Duration {
	d := r.Cost(s)
	r.copies++
	r.bytes += s.BaseRSS
	r.spent += d
	return d
}

// Stats reports the replication ledger.
func (r *Replicator) Stats() ReplStats {
	return ReplStats{Copies: r.copies, Bytes: r.bytes, Spent: r.spent}
}
