package snapshot

import (
	"errors"
	"strings"
	"testing"

	"lupine/internal/apps"
	"lupine/internal/core"
	"lupine/internal/faults"
	"lupine/internal/guest"
	"lupine/internal/kerneldb"
	"lupine/internal/simclock"
	"lupine/internal/vmm"
)

// bootHello builds and boots one hello-world Lupine unikernel under the
// given monitor and runs it to completion, returning everything Capture
// needs.
func bootHello(t *testing.T, mon *vmm.Monitor) (*core.Unikernel, *core.VM) {
	t.Helper()
	db := kerneldb.MustLoad()
	app, err := apps.Lookup("hello-world")
	if err != nil {
		t.Fatal(err)
	}
	u, err := core.Build(db, core.Spec{
		Manifest: app.Manifest(),
		Image:    app.ContainerImage(),
		Program:  func(p *guest.Proc, probeOnly bool) int { return app.Main(p, probeOnly) },
	}, core.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := u.Boot(core.BootOpts{Monitor: mon, ProbeOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	return u, vm
}

func capture(t *testing.T) (*core.VM, *Snapshot) {
	t.Helper()
	u, vm := bootHello(t, vmm.Firecracker())
	snap, err := Capture(u.Kernel, vmm.Firecracker(), vm.Boot, vm.Guest)
	if err != nil {
		t.Fatal(err)
	}
	return vm, snap
}

// TestCaptureContentAddressed boots the same kernel twice: identical
// booted state must yield byte-identical snapshot IDs, and a different
// kernel configuration must yield a different one.
func TestCaptureContentAddressed(t *testing.T) {
	_, first := capture(t)
	_, second := capture(t)
	if first.ID == "" || first.Kernel == "" {
		t.Fatalf("empty identity: %+v", first)
	}
	if first.ID != second.ID {
		t.Errorf("same booted state, different IDs: %s vs %s", first.ID, second.ID)
	}
	if first.Kernel != second.Kernel {
		t.Errorf("same kernel, different keys: %s vs %s", first.Kernel, second.Kernel)
	}

	// A structurally different kernel (microVM baseline) under the same
	// monitor must not collide.
	db := kerneldb.MustLoad()
	app, err := apps.Lookup("hello-world")
	if err != nil {
		t.Fatal(err)
	}
	mu, err := core.BuildMicroVM(db, core.Spec{
		Manifest: app.Manifest(),
		Image:    app.ContainerImage(),
		Program:  func(p *guest.Proc, probeOnly bool) int { return app.Main(p, probeOnly) },
	})
	if err != nil {
		t.Fatal(err)
	}
	mvm, err := mu.Boot(core.BootOpts{Monitor: vmm.Firecracker(), ProbeOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := mvm.Run(); err != nil {
		t.Fatal(err)
	}
	msnap, err := Capture(mu.Kernel, vmm.Firecracker(), mvm.Boot, mvm.Guest)
	if err != nil {
		t.Fatal(err)
	}
	if msnap.Kernel == first.Kernel || msnap.ID == first.ID {
		t.Errorf("microvm snapshot collides with lupine: kernel %s/%s id %s/%s",
			msnap.Kernel, first.Kernel, msnap.ID, first.ID)
	}
}

// TestCaptureUnsupportedMonitor: the libos-style monitors have no
// snapshot API, so capture must refuse (§6.2: the comparators always
// cold boot).
func TestCaptureUnsupportedMonitor(t *testing.T) {
	u, vm := bootHello(t, vmm.Firecracker())
	mon := vmm.Solo5HVT()
	if _, err := Capture(u.Kernel, mon, vm.Boot, vm.Guest); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Capture under %s: err = %v, want ErrUnsupported", mon.Name, err)
	}
	if _, err := Capture(nil, vmm.Firecracker(), vm.Boot, vm.Guest); err == nil {
		t.Error("Capture(nil image) succeeded")
	}
}

// TestRestoreBeatsColdBootTenfold is the subsystem's acceptance bar:
// restoring skips every boot phase except monitor handoff, so a clean
// restore must be at least 10x faster than the cold boot it replaces.
func TestRestoreBeatsColdBootTenfold(t *testing.T) {
	vm, snap := capture(t)
	cold := vm.Boot.Total
	cost := snap.RestoreCost()
	if cost <= 0 {
		t.Fatalf("non-positive restore cost %v", cost)
	}
	if 10*cost > cold {
		t.Errorf("restore %v not 10x faster than cold boot %v", cost, cold)
	}
	rr := snap.Restore(vmm.Firecracker(), nil, 0, cold)
	if !rr.Restored || rr.Ready != cost || rr.Detail != "" {
		t.Errorf("clean restore = %+v, want Restored with Ready %v", rr, cost)
	}
}

// TestRestoreFaultFallbacks arms both snapshot-plane sites: a corrupt
// artifact falls back before mapping (handoff + cold boot), a mid-flight
// death falls back after the full restore attempt (restore + cold boot).
// Either way the launch still comes up, with the waste accounted.
func TestRestoreFaultFallbacks(t *testing.T) {
	vm, snap := capture(t)
	cold := vm.Boot.Total

	inj := faults.MustNew(faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Site: SiteCorrupt, NthHit: 1, Param: 4096},
	}})
	rr := snap.Restore(vmm.Firecracker(), inj, 0, cold)
	if rr.Restored {
		t.Error("corrupt snapshot still restored")
	}
	if want := restoreHandoffCost + cold; rr.Ready != want {
		t.Errorf("corrupt fallback Ready = %v, want handoff+cold = %v", rr.Ready, want)
	}
	if !strings.Contains(rr.Detail, "checksum") {
		t.Errorf("corrupt fallback detail = %q", rr.Detail)
	}

	inj = faults.MustNew(faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Site: SiteRestoreFail, NthHit: 1},
	}})
	rr = snap.Restore(vmm.Firecracker(), inj, 0, cold)
	if rr.Restored {
		t.Error("mid-flight death still restored")
	}
	if want := snap.RestoreCost() + cold; rr.Ready != want {
		t.Errorf("mid-flight fallback Ready = %v, want restore+cold = %v", rr.Ready, want)
	}

	// A monitor without snapshots cold boots with no extra charge.
	rr = snap.Restore(vmm.Solo5HVT(), nil, 0, cold)
	if rr.Restored || rr.Ready != cold {
		t.Errorf("unsupported-monitor restore = %+v, want cold boot %v", rr, cold)
	}
}

// TestRestoreFaultWindow: a rule windowed past the restore instant must
// not fire — Restore checks SiteRestoreFail at now + cost, so a window
// that opens mid-restore catches it.
func TestRestoreFaultWindow(t *testing.T) {
	vm, snap := capture(t)
	cold := vm.Boot.Total
	cost := snap.RestoreCost()
	// Window opens after the handoff but before the restore completes:
	// the corrupt check (at now) misses it, the mid-flight check (at
	// now+cost) lands inside.
	inj := faults.MustNew(faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Site: SiteRestoreFail, From: simclock.Time(cost / 2), To: simclock.Time(2 * cost), NthHit: 1},
	}})
	if rr := snap.Restore(vmm.Firecracker(), inj, 0, cold); rr.Restored {
		t.Errorf("mid-restore window missed: %+v", rr)
	}
	// The same plan evaluated far past the window restores cleanly.
	inj = faults.MustNew(faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Site: SiteRestoreFail, From: simclock.Time(cost / 2), To: simclock.Time(2 * cost), NthHit: 1},
	}})
	if rr := snap.Restore(vmm.Firecracker(), inj, simclock.Time(10*cost), cold); !rr.Restored {
		t.Errorf("restore outside the fault window fell back: %+v", rr)
	}
}

// TestCloneSetSharing is the memory half of the acceptance bar: N clones
// sharing a base image must cost less than N cold instances as long as
// their dirty sets are smaller than the base.
func TestCloneSetSharing(t *testing.T) {
	const base = int64(40 * guest.MiB)
	const dirty = int64(3 * guest.MiB)
	const n = 8
	cs := NewCloneSet(base)
	for i := 0; i < n; i++ {
		cs.Clone().Touch(dirty)
	}
	if cs.Clones() != n {
		t.Fatalf("Clones() = %d, want %d", cs.Clones(), n)
	}
	if cs.SharedBase() != base { // already page-aligned
		t.Errorf("SharedBase = %d, want %d", cs.SharedBase(), base)
	}
	want := base + n*dirty
	if got := cs.AggregateRSS(); got != want {
		t.Errorf("AggregateRSS = %d, want %d", got, want)
	}
	if naive := int64(n) * base; cs.AggregateRSS() >= naive {
		t.Errorf("CoW aggregate %d not below naive %d", cs.AggregateRSS(), naive)
	}
}

// TestClonePageRounding: dirtying is page-granular — one byte costs one
// page, and a clone that never writes costs nothing.
func TestClonePageRounding(t *testing.T) {
	cs := NewCloneSet(1) // rounds up to one page
	if cs.SharedBase() != pageSize {
		t.Errorf("base of 1 byte = %d, want one page %d", cs.SharedBase(), pageSize)
	}
	c := cs.Clone()
	if c.RSS() != 0 {
		t.Errorf("untouched clone RSS = %d", c.RSS())
	}
	c.Touch(1)
	if c.RSS() != pageSize {
		t.Errorf("Touch(1) RSS = %d, want %d", c.RSS(), pageSize)
	}
	c.Touch(pageSize + 1)
	if want := int64(3 * pageSize); c.Dirty() != want {
		t.Errorf("Dirty after Touch(1)+Touch(page+1) = %d, want %d", c.Dirty(), want)
	}
	c.Touch(0)
	c.Touch(-5)
	if want := int64(3 * pageSize); c.Dirty() != want {
		t.Errorf("Touch(0)/Touch(-5) changed dirty to %d", c.Dirty())
	}
}

// TestStoreCaching: one capture serves every later lookup of the same
// kernel+monitor, the KernelCache pattern applied to warm state.
func TestStoreCaching(t *testing.T) {
	_, snap := capture(t)
	st := NewStore()
	if _, ok := st.Get(snap.Kernel, snap.Monitor); ok {
		t.Fatal("empty store returned a snapshot")
	}
	calls := 0
	for i := 0; i < 3; i++ {
		got, err := st.GetOrCapture(snap.Kernel, snap.Monitor, func() (*Snapshot, error) {
			calls++
			return snap, nil
		})
		if err != nil || got != snap {
			t.Fatalf("GetOrCapture = %v, %v", got, err)
		}
	}
	if calls != 1 {
		t.Errorf("capture callback ran %d times, want 1", calls)
	}
	captures, hits, misses := st.Stats()
	if captures != 1 || hits != 2 || misses != 2 {
		t.Errorf("Stats = (%d captures, %d hits, %d misses), want (1, 2, 2)", captures, hits, misses)
	}
	// A different monitor is a different cache line.
	if _, ok := st.Get(snap.Kernel, "qemu"); ok {
		t.Error("lookup under a different monitor hit")
	}
}

// TestStoreCaptureError: a failed capture is not cached.
func TestStoreCaptureError(t *testing.T) {
	st := NewStore()
	boom := errors.New("boom")
	if _, err := st.GetOrCapture("k", "m", func() (*Snapshot, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if captures, _, _ := st.Stats(); captures != 0 {
		t.Errorf("failed capture was stored: %d captures", captures)
	}
}

// TestCloneRelease: the PR-3 accounting leak — drained clones must stop
// counting toward the aggregate, or scale-up/scale-down cycles grow RSS
// monotonically.
func TestCloneRelease(t *testing.T) {
	cs := NewCloneSet(int64(10 * guest.MiB))
	a := cs.Clone()
	b := cs.Clone()
	a.Touch(2 * guest.MiB)
	a.Cache(1 * guest.MiB)
	b.Touch(4 * guest.MiB)

	before := cs.AggregateRSS()
	freed := a.Release()
	if want := int64(3 * guest.MiB); freed != want {
		t.Errorf("Release freed %d, want %d", freed, want)
	}
	if got := cs.AggregateRSS(); got != before-freed {
		t.Errorf("AggregateRSS %d after release, want %d", got, before-freed)
	}
	if !a.Released() || a.RSS() != 0 {
		t.Errorf("released clone still charged: released=%v rss=%d", a.Released(), a.RSS())
	}
	if cs.Active() != 1 || cs.Clones() != 2 {
		t.Errorf("Active=%d Clones=%d, want 1/2", cs.Active(), cs.Clones())
	}
	// Idempotent, and a released clone cannot grow again.
	if freed := a.Release(); freed != 0 {
		t.Errorf("double Release freed %d", freed)
	}
	a.Touch(guest.MiB)
	a.Cache(guest.MiB)
	if a.RSS() != 0 {
		t.Errorf("released clone accepted new pages: %d", a.RSS())
	}
}

// TestCloneReclaim: clean pages drop under balloon pressure, dirty pages
// do not; ReclaimClean drains the largest holders first deterministically.
func TestCloneReclaim(t *testing.T) {
	cs := NewCloneSet(int64(10 * guest.MiB))
	a := cs.Clone()
	a.Touch(2 * guest.MiB)
	a.Cache(3 * guest.MiB)
	b := cs.Clone()
	b.Cache(1 * guest.MiB)

	if got := a.Reclaim(guest.MiB); got != guest.MiB {
		t.Errorf("Reclaim freed %d, want %d", got, guest.MiB)
	}
	if a.Clean() != 2*guest.MiB || a.Dirty() != 2*guest.MiB {
		t.Errorf("after reclaim clean=%d dirty=%d", a.Clean(), a.Dirty())
	}
	// Set-wide: need 4MiB, have 3MiB clean left (2 on a, 1 on b).
	if got := cs.ReclaimClean(4 * guest.MiB); got != 3*guest.MiB {
		t.Errorf("ReclaimClean freed %d, want %d", got, 3*guest.MiB)
	}
	if cs.CleanRSS() != 0 {
		t.Errorf("CleanRSS %d after full reclaim", cs.CleanRSS())
	}
	// Dirty pages survived: they are not reclaimable.
	if cs.PrivateRSS() != 2*guest.MiB {
		t.Errorf("PrivateRSS %d, want the dirty 2MiB", cs.PrivateRSS())
	}
}

// TestStoreEviction: under pressure the store drops LRU artifacts but
// never a pinned (actively mapped) one, with deterministic ordering and
// eviction accounting.
func TestStoreEviction(t *testing.T) {
	st := NewStore()
	mk := func(kernel string, rss int64) *Snapshot {
		return &Snapshot{Kernel: kernel, Monitor: "firecracker", BaseRSS: rss}
	}
	st.Put(mk("a", 10*guest.MiB))
	st.Put(mk("b", 20*guest.MiB))
	st.Put(mk("c", 30*guest.MiB))
	if got := st.Resident(); got != 60*guest.MiB {
		t.Fatalf("Resident %d, want %d", got, 60*guest.MiB)
	}

	// Touch "a" so "b" becomes the coldest.
	st.Get("a", "firecracker")

	// Need 15MiB with "c" pinned: evicts "b" (coldest, 20MiB) and stops.
	freed := st.EvictCold(15*guest.MiB, Key("c", "firecracker"))
	if freed != 20*guest.MiB {
		t.Errorf("EvictCold freed %d, want %d", freed, 20*guest.MiB)
	}
	if _, ok := st.Get("b", "firecracker"); ok {
		t.Error("evicted artifact still cached")
	}
	if _, ok := st.Get("c", "firecracker"); !ok {
		t.Error("pinned artifact was evicted")
	}

	// Demanding more than everything evictable frees all but the pin.
	freed = st.EvictCold(1<<40, Key("c", "firecracker"))
	if freed != 10*guest.MiB {
		t.Errorf("full eviction freed %d, want %d", freed, 10*guest.MiB)
	}
	if got := st.Resident(); got != 30*guest.MiB {
		t.Errorf("Resident %d after eviction, want the pinned 30MiB", got)
	}
	count, bytes := st.Evictions()
	if count != 2 || bytes != 30*guest.MiB {
		t.Errorf("Evictions = (%d, %d), want (2, %d)", count, bytes, 30*guest.MiB)
	}
}
