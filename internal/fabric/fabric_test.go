package fabric

import (
	"container/heap"
	"errors"
	"fmt"
	"strings"
	"testing"

	"lupine/internal/faults"
	"lupine/internal/guest"
	"lupine/internal/simclock"
)

// testSched is a minimal deterministic event engine: events pop in
// (time, insertion-seq) order, exactly like the fleet's heap the fabric
// shares in production.
type testSched struct {
	now  simclock.Time
	seq  int
	heap schedHeap
}

type schedEvent struct {
	at  simclock.Time
	seq int
	fn  func(now simclock.Time)
}

type schedHeap []*schedEvent

func (h schedHeap) Len() int { return len(h) }
func (h schedHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h schedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *schedHeap) Push(x interface{}) { *h = append(*h, x.(*schedEvent)) }
func (h *schedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

func (s *testSched) Now() simclock.Time { return s.now }

func (s *testSched) Schedule(at simclock.Time, fn func(now simclock.Time)) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.heap, &schedEvent{at: at, seq: s.seq, fn: fn})
}

// Run drains the heap up to and including horizon.
func (s *testSched) Run(horizon simclock.Time) {
	for s.heap.Len() > 0 {
		ev := s.heap[0]
		if ev.at > horizon {
			break
		}
		heap.Pop(&s.heap)
		s.now = ev.at
		ev.fn(s.now)
	}
	if horizon > s.now {
		s.now = horizon
	}
}

const ms = simclock.Millisecond

func TestParseCIDR(t *testing.T) {
	cases := []struct {
		in      string
		wantErr bool
		hosts   int
	}{
		{"10.0.0.0/16", false, 65534},
		{"192.168.1.0/24", false, 254},
		{"10.0.0.0/30", false, 2},
		{"10.0.0.0", true, 0},      // missing prefix
		{"10.0.0.0/31", true, 0},   // prefix out of range
		{"10.0.0.1/24", true, 0},   // host bits set
		{"10.0.0/24", true, 0},     // not dotted-quad
		{"10.0.0.256/24", true, 0}, // bad octet
	}
	for _, c := range cases {
		sub, err := ParseCIDR(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseCIDR(%q): want error, got %v", c.in, sub)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCIDR(%q): %v", c.in, err)
			continue
		}
		if sub.Hosts() != c.hosts {
			t.Errorf("ParseCIDR(%q).Hosts() = %d, want %d", c.in, sub.Hosts(), c.hosts)
		}
	}
}

func TestSubnetAllocSequentialAndExhaustion(t *testing.T) {
	sub, err := ParseCIDR("10.1.0.0/30")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sub.Alloc()
	b, _ := sub.Alloc()
	if a.String() != "10.1.0.1" || b.String() != "10.1.0.2" {
		t.Fatalf("alloc sequence = %s, %s; want 10.1.0.1, 10.1.0.2", a, b)
	}
	if _, err := sub.Alloc(); err == nil {
		t.Fatal("third Alloc on a /30 should exhaust")
	}
}

// TestSOMAXCONNParity pins the fabric's backlog cap to the guest network
// stack's: the fabric models the wire in front of guest/net.go listeners,
// so the two listen(2) clamps must agree.
func TestSOMAXCONNParity(t *testing.T) {
	if SOMAXCONN != guest.SOMAXCONN {
		t.Fatalf("fabric.SOMAXCONN = %d, guest.SOMAXCONN = %d; the clamps must match", SOMAXCONN, guest.SOMAXCONN)
	}
}

// newTestNet builds a one-client, one-server network on a fresh test
// scheduler. The server auto-accepts and echoes a response unless
// noServe is set.
func newTestNet(t *testing.T, inj *faults.Injector, params Params) (*testSched, *Network, *Node, *Node, *Listener) {
	t.Helper()
	sched := &testSched{}
	net, err := New(params, sched, inj)
	if err != nil {
		t.Fatal(err)
	}
	client, err := net.AddNode("client", LinkSpec{})
	if err != nil {
		t.Fatal(err)
	}
	server, err := net.AddNode("server", LinkSpec{})
	if err != nil {
		t.Fatal(err)
	}
	lst := server.Listen(80, 16)
	return sched, net, client, server, lst
}

type connResult struct {
	established bool
	served      bool
	err         error
}

func dialAndSend(sched *testSched, client, server *Node, reqBytes, respBytes int, respTimeout simclock.Duration, serve bool, lst *Listener) *connResult {
	res := &connResult{}
	if serve {
		lst.OnPending = func(now simclock.Time) {
			for {
				c := lst.Accept(now)
				if c == nil {
					return
				}
				cc := c
				c.WhenRequest(now, func(at simclock.Time) {
					cc.Respond(respBytes, at)
				})
			}
		}
	}
	client.Dial(server, 80, ConnCallbacks{
		Established: func(c *Conn, now simclock.Time) {
			res.established = true
			c.SendRequest(reqBytes, respTimeout, now)
		},
		Failed:   func(c *Conn, err error, now simclock.Time) { res.err = err },
		Response: func(c *Conn, now simclock.Time) { res.served = true },
	})
	return res
}

func TestCleanWireRequestResponse(t *testing.T) {
	sched, net, client, server, lst := newTestNet(t, nil, DefaultParams())
	res := dialAndSend(sched, client, server, 1024, 4096, 10*ms, true, lst)
	sched.Run(simclock.Time(100 * ms))
	if !res.established || !res.served || res.err != nil {
		t.Fatalf("clean wire: established=%v served=%v err=%v", res.established, res.served, res.err)
	}
	st := net.Stats()
	if st.Established != 1 || st.Retransmits != 0 || st.Dropped != 0 {
		t.Fatalf("clean wire stats: %+v", st)
	}
	if st.Delivered != st.Segments {
		t.Fatalf("clean wire should deliver every segment: %+v", st)
	}
}

func TestNoListenerRefused(t *testing.T) {
	sched, net, client, server, _ := newTestNet(t, nil, DefaultParams())
	res := &connResult{}
	client.Dial(server, 8080, ConnCallbacks{ // nothing listens on 8080
		Failed: func(c *Conn, err error, now simclock.Time) { res.err = err },
	})
	sched.Run(simclock.Time(100 * ms))
	if !errors.Is(res.err, ErrRefused) {
		t.Fatalf("dial to unbound port: err=%v, want ErrRefused", res.err)
	}
	if net.Stats().Refused != 1 {
		t.Fatalf("stats: %+v", net.Stats())
	}
}

func TestDeadServerRefused(t *testing.T) {
	sched, _, client, server, _ := newTestNet(t, nil, DefaultParams())
	server.SetAlive(func(now simclock.Time) bool { return false })
	res := &connResult{}
	client.Dial(server, 80, ConnCallbacks{
		Failed: func(c *Conn, err error, now simclock.Time) { res.err = err },
	})
	sched.Run(simclock.Time(100 * ms))
	if !errors.Is(res.err, ErrRefused) {
		t.Fatalf("dial to dead server: err=%v, want ErrRefused", res.err)
	}
}

// TestBacklogOverflowSheds fills a backlog of exactly cap and checks the
// overflow connection is refused with ErrOverflow — the load balancer's
// shed signal — while the queued ones survive.
func TestBacklogOverflowSheds(t *testing.T) {
	sched := &testSched{}
	net, err := New(DefaultParams(), sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	client, _ := net.AddNode("client", LinkSpec{})
	server, _ := net.AddNode("server", LinkSpec{})
	lst := server.Listen(80, 2) // cap 2, nobody accepting
	var errs []error
	for i := 0; i < 3; i++ {
		client.Dial(server, 80, ConnCallbacks{
			Failed: func(c *Conn, err error, now simclock.Time) { errs = append(errs, err) },
		})
	}
	sched.Run(simclock.Time(ms))
	if len(errs) != 1 || !errors.Is(errs[0], ErrOverflow) {
		t.Fatalf("overflow errors = %v, want exactly one ErrOverflow", errs)
	}
	if lst.Pending() != 2 {
		t.Fatalf("backlog pending = %d, want 2", lst.Pending())
	}
	if net.Stats().Overflows != 1 {
		t.Fatalf("stats: %+v", net.Stats())
	}
}

// TestListenClamp checks the listen(2) clamping rules.
func TestListenClamp(t *testing.T) {
	sched := &testSched{}
	net, _ := New(DefaultParams(), sched, nil)
	nd, _ := net.AddNode("n", LinkSpec{})
	if l := nd.Listen(1, 0); l.cap != 1 {
		t.Errorf("backlog 0 clamps to %d, want 1", l.cap)
	}
	if l := nd.Listen(2, 100000); l.cap != SOMAXCONN {
		t.Errorf("backlog 100000 clamps to %d, want %d", l.cap, SOMAXCONN)
	}
}

// TestLossRetransmitRecovers drops the first data segment; the sender's
// RTO fires, the retransmission lands, and the request completes anyway.
func TestLossRetransmitRecovers(t *testing.T) {
	inj := faults.MustNew(faults.Plan{Seed: 7, Rules: []faults.Rule{
		{Site: SiteLoss, NthHit: 5}, // 5th segment on the wire: the request data
	}})
	sched, net, client, server, lst := newTestNet(t, inj, DefaultParams())
	res := dialAndSend(sched, client, server, 1024, 4096, 50*ms, true, lst)
	sched.Run(simclock.Time(100 * ms))
	if !res.served || res.err != nil {
		t.Fatalf("lossy wire: served=%v err=%v", res.served, res.err)
	}
	st := net.Stats()
	if st.Dropped != 1 || st.Retransmits < 1 {
		t.Fatalf("lossy wire stats: %+v", st)
	}
}

// TestAsymmetricPartitionTimesOut cuts traffic OUT OF the server (its
// SYN-ACKs vanish) while traffic INTO it still flows: the client
// retransmits its SYN into a one-way street and fails with ErrTimeout —
// the signature one-sided-partition behavior the breaker tests build on.
func TestAsymmetricPartitionTimesOut(t *testing.T) {
	sched := &testSched{}
	params := DefaultParams()
	inj := faults.MustNew(faults.Plan{Seed: 3, Rules: []faults.Rule{
		{Site: SitePartition, Prob: 1, Param: -2}, // cut segments out of node 2
	}})
	net, err := New(params, sched, inj)
	if err != nil {
		t.Fatal(err)
	}
	client, _ := net.AddNode("client", LinkSpec{}) // id 1
	server, _ := net.AddNode("server", LinkSpec{}) // id 2
	lst := server.Listen(80, 16)
	// Nobody accepts: the backlog retains what the server heard, so the
	// test can prove the SYN crossed while the SYN-ACK did not.
	res := dialAndSend(sched, client, server, 1024, 4096, 50*ms, false, lst)
	sched.Run(simclock.Time(200 * ms))
	if !errors.Is(res.err, ErrTimeout) {
		t.Fatalf("one-sided partition: err=%v, want ErrTimeout", res.err)
	}
	if res.established {
		t.Fatal("SYN-ACK crossed a partition that should cut it")
	}
	st := net.Stats()
	// The server heard the SYN (traffic in still flows) and queued the
	// connection; only its answers died. The entry is a corpse by now —
	// the client gave up — but it must be THERE.
	if len(lst.backlog) == 0 {
		t.Fatal("server never heard the SYN: partition cut the wrong direction")
	}
	if st.Retransmits != DefaultParams().ConnectRetries {
		t.Fatalf("SYN retransmits = %d, want %d", st.Retransmits, DefaultParams().ConnectRetries)
	}
}

// TestFlapDropsThenHeals fires one flap on the 5th segment (the request
// data): the link goes down, retransmissions during the outage die on
// the floor, and the first retransmission after the heal completes the
// request.
func TestFlapDropsThenHeals(t *testing.T) {
	inj := faults.MustNew(faults.Plan{Seed: 11, Rules: []faults.Rule{
		{Site: SiteFlap, NthHit: 5, Param: 300}, // 300 µs outage
	}})
	sched, net, client, server, lst := newTestNet(t, inj, DefaultParams())
	res := dialAndSend(sched, client, server, 1024, 4096, 50*ms, true, lst)
	sched.Run(simclock.Time(100 * ms))
	if !res.served || res.err != nil {
		t.Fatalf("flapped wire: served=%v err=%v", res.served, res.err)
	}
	st := net.Stats()
	if st.Dropped < 1 || st.Retransmits < 1 {
		t.Fatalf("flap should drop and force retransmission: %+v", st)
	}
}

// TestFlapHealMidRexmitResumesLadder is the mid-retransmission healing
// contract: the link flaps down AFTER the request is in flight, the
// ladder's early rungs die into the downed link, and when the flap heals
// the NEXT rung — not a fresh connection — completes the request. The
// attempt counter must climb monotonically through the outage (resume,
// not restart) and no RST may appear: a flap is a wire fault, not a
// server verdict.
func TestFlapHealMidRexmitResumesLadder(t *testing.T) {
	params := DefaultParams()
	params.RTOJitter = 0 // exact rung times: checks at +200, +400, +800 µs
	// The request data departs at ~20µs (two 10µs handshake hops); the
	// window catches exactly that segment and takes the link down for
	// 900µs — long enough to eat rungs 1 and 2, healed before rung 3.
	inj := faults.MustNew(faults.Plan{Seed: 11, Rules: []faults.Rule{
		{Site: SiteFlap, From: simclock.Time(15 * simclock.Microsecond), To: simclock.Time(25 * simclock.Microsecond), Prob: 1, Param: 900},
	}})
	sched, net, client, server, lst := newTestNet(t, inj, params)
	lst.OnPending = func(now simclock.Time) {
		for {
			c := lst.Accept(now)
			if c == nil {
				return
			}
			cc := c
			c.WhenRequest(now, func(at simclock.Time) { cc.Respond(4096, at) })
		}
	}
	res := &connResult{}
	conn := client.Dial(server, 80, ConnCallbacks{
		Established: func(c *Conn, now simclock.Time) {
			res.established = true
			c.SendRequest(1024, 50*ms, now)
		},
		Failed:   func(c *Conn, err error, now simclock.Time) { res.err = err },
		Response: func(c *Conn, now simclock.Time) { res.served = true },
	})
	sched.Run(simclock.Time(100 * ms))
	if !res.established || !res.served || res.err != nil {
		t.Fatalf("mid-rexmit heal: established=%v served=%v err=%v", res.established, res.served, res.err)
	}
	// Exactly three rungs spent: the flap ate the original send, rungs 1
	// and 2 died into the downed link, rung 3 landed after the heal. A
	// restarted ladder (or a redial) could not produce this count on this
	// connection.
	if conn.Retransmits() != 3 {
		t.Fatalf("rexmit ladder spent %d rungs, want 3 (resume through the outage)", conn.Retransmits())
	}
	st := net.Stats()
	if st.Dropped != 3 { // 1 flap + 2 link-down
		t.Fatalf("dropped %d segments, want 3 (flap + two link-down rungs): %+v", st.Dropped, st)
	}
	if st.Refused != 0 || st.Overflows != 0 || st.Timeouts != 0 {
		t.Fatalf("flap heal must not RST or time out the connection: %+v", st)
	}
	if st.Established != 1 {
		t.Fatalf("established %d connections, want 1 — the ladder must resume, not redial: %+v", st.Established, st)
	}
}

// TestFlapOutlastsRexmitLadder is the contrast case: the outage outlives
// the whole retransmission budget, so the connection fails with
// ErrTimeout — retransmit exhaustion, the partition signature — and
// still never an RST.
func TestFlapOutlastsRexmitLadder(t *testing.T) {
	params := DefaultParams()
	params.RTOJitter = 0
	inj := faults.MustNew(faults.Plan{Seed: 11, Rules: []faults.Rule{
		{Site: SiteFlap, From: simclock.Time(15 * simclock.Microsecond), To: simclock.Time(25 * simclock.Microsecond), Prob: 1, Param: 7000},
	}})
	sched, net, client, server, lst := newTestNet(t, inj, params)
	res := dialAndSend(sched, client, server, 1024, 4096, 50*ms, true, lst)
	sched.Run(simclock.Time(100 * ms))
	if res.served {
		t.Fatal("request served through a flap that outlasts the whole ladder")
	}
	if !errors.Is(res.err, ErrTimeout) {
		t.Fatalf("exhausted ladder: err=%v, want ErrTimeout", res.err)
	}
	st := net.Stats()
	if st.Retransmits != DefaultParams().MaxRetransmits {
		t.Fatalf("spent %d retransmits, want the full budget of %d", st.Retransmits, DefaultParams().MaxRetransmits)
	}
	if st.Refused != 0 {
		t.Fatalf("a flap is a wire fault, not a server RST: %+v", st)
	}
	if st.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1: %+v", st.Timeouts, st)
	}
}

// TestAcceptSkipsDeadEntries fills a backlog, times the clients out, and
// checks Accept discards the corpses.
func TestAcceptSkipsDeadEntries(t *testing.T) {
	sched := &testSched{}
	params := DefaultParams()
	net, _ := New(params, sched, nil)
	client, _ := net.AddNode("client", LinkSpec{})
	server, _ := net.AddNode("server", LinkSpec{})
	lst := server.Listen(80, 4)
	var conns []*Conn
	for i := 0; i < 2; i++ {
		conns = append(conns, client.Dial(server, 80, ConnCallbacks{}))
	}
	sched.Run(simclock.Time(ms))
	if lst.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", lst.Pending())
	}
	conns[0].fail(ErrTimeout, sched.Now()) // client 0 gives up
	if lst.Pending() != 1 {
		t.Fatalf("pending after client death = %d, want 1", lst.Pending())
	}
	got := lst.Accept(sched.Now())
	if got != conns[1] {
		t.Fatalf("Accept returned %v, want the live conn", got)
	}
	if lst.Accept(sched.Now()) != nil {
		t.Fatal("Accept after draining should return nil")
	}
}

// storm runs a many-connection scenario under loss+delay+flap and
// returns a transcript string: same seed must mean byte-identical
// transcripts.
func storm(seed uint64) string {
	inj := faults.MustNew(faults.Plan{Seed: seed, Rules: []faults.Rule{
		{Site: SiteLoss, Prob: 0.2},
		{Site: SiteDelay, Prob: 0.1, Param: 150},
		{Site: SiteFlap, Prob: 0.02, Param: 400},
	}})
	sched := &testSched{}
	params := DefaultParams()
	params.Seed = seed
	net, _ := New(params, sched, inj)
	client, _ := net.AddNode("client", LinkSpec{})
	server, _ := net.AddNode("server", LinkSpec{})
	lst := server.Listen(80, 8)
	lst.OnPending = func(now simclock.Time) {
		for {
			c := lst.Accept(now)
			if c == nil {
				return
			}
			cc := c
			c.WhenRequest(now, func(at simclock.Time) { cc.Respond(2048, at) })
		}
	}
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		id := i
		launch := simclock.Time(i) * simclock.Time(100*simclock.Microsecond)
		sched.Schedule(launch, func(now simclock.Time) {
			client.Dial(server, 80, ConnCallbacks{
				Established: func(c *Conn, at simclock.Time) { c.SendRequest(512, 20*ms, at) },
				Failed: func(c *Conn, err error, at simclock.Time) {
					fmt.Fprintf(&sb, "%d fail %v @%v\n", id, err, at)
				},
				Response: func(c *Conn, at simclock.Time) {
					fmt.Fprintf(&sb, "%d ok rexmit=%d @%v\n", id, c.Retransmits(), at)
				},
			})
		})
	}
	sched.Run(simclock.Time(500 * ms))
	fmt.Fprintf(&sb, "stats %+v\n", net.Stats())
	return sb.String()
}

func TestStormDeterminism(t *testing.T) {
	a, b := storm(42), storm(42)
	if a != b {
		t.Fatalf("same-seed storms diverged:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if c := storm(43); c == a {
		t.Fatal("different seeds produced identical storms: jitter stream not seeded")
	}
	// The storm must actually exercise the machinery it claims to.
	if !strings.Contains(a, "rexmit=") {
		t.Fatalf("storm transcript has no successes:\n%s", a)
	}
}

// TestProbeVerdicts covers the heartbeat datagram: clean reply, dead
// target silence, and a lost probe all resolving exactly once.
func TestProbeVerdicts(t *testing.T) {
	sched := &testSched{}
	net, _ := New(DefaultParams(), sched, nil)
	lb, _ := net.AddNode("lb", LinkSpec{})
	vm, _ := net.AddNode("vm", LinkSpec{})

	verdicts := 0
	var lastOK bool
	record := func(ok bool, now simclock.Time) { verdicts++; lastOK = ok }

	net.Probe(lb, vm, ms, record)
	sched.Run(simclock.Time(10 * ms))
	if verdicts != 1 || !lastOK {
		t.Fatalf("clean probe: verdicts=%d ok=%v", verdicts, lastOK)
	}

	vm.SetAlive(func(now simclock.Time) bool { return false })
	net.Probe(lb, vm, ms, record)
	sched.Run(simclock.Time(20 * ms))
	if verdicts != 2 || lastOK {
		t.Fatalf("dead-target probe: verdicts=%d ok=%v", verdicts, lastOK)
	}
	st := net.Stats()
	if st.ProbesSent != 2 || st.ProbesOK != 1 {
		t.Fatalf("probe stats: %+v", st)
	}
}

// TestProbeLostIsFailed drops the probe datagram itself: no retransmit,
// the timeout is the verdict — how one-sided partitions become visible
// to health checking.
func TestProbeLostIsFailed(t *testing.T) {
	inj := faults.MustNew(faults.Plan{Seed: 5, Rules: []faults.Rule{
		{Site: SiteLoss, NthHit: 1},
	}})
	sched := &testSched{}
	net, _ := New(DefaultParams(), sched, inj)
	lb, _ := net.AddNode("lb", LinkSpec{})
	vm, _ := net.AddNode("vm", LinkSpec{})
	verdicts, ok := 0, true
	net.Probe(lb, vm, ms, func(got bool, now simclock.Time) { verdicts++; ok = got })
	sched.Run(simclock.Time(10 * ms))
	if verdicts != 1 || ok {
		t.Fatalf("lost probe: verdicts=%d ok=%v, want one false verdict", verdicts, ok)
	}
}

// TestBandwidthSerializes checks the egress link serializes back-to-back
// segments: the second departs after the first finishes transmitting.
func TestBandwidthSerializes(t *testing.T) {
	sched := &testSched{}
	params := DefaultParams()
	params.DefaultLink = LinkSpec{Latency: simclock.Microsecond, Bandwidth: 1000 * 1000} // 1 MB/s: 1 ms per KB
	net, _ := New(params, sched, nil)
	a, _ := net.AddNode("a", LinkSpec{})
	b, _ := net.AddNode("b", LinkSpec{})
	var arrivals []simclock.Time
	for i := 0; i < 2; i++ {
		net.transmit(&segment{kind: segProbe, from: a, to: b, size: 1000, probeID: 1000 + i}, sched.Now())
	}
	// Intercept via probe delivery: b is up, replies happen, but we only
	// care about arrival spacing — watch deliver times through a shim.
	for sched.heap.Len() > 0 {
		ev := sched.heap[0]
		heap.Pop(&sched.heap)
		sched.now = ev.at
		arrivals = append(arrivals, ev.at)
		// don't run fn: we only needed the arrival instants of the two probes
		if len(arrivals) == 2 {
			break
		}
	}
	gap := arrivals[1].Sub(arrivals[0])
	if gap != simclock.Millisecond {
		t.Fatalf("egress gap = %v, want 1ms (1000 B at 1 MB/s)", gap)
	}
}
