// Package fabric is the deterministic virtual network between VMs: an
// L3/L4 model on the simclock that the fleet front-end dispatches over,
// replacing the abstract "request arrives by function call" wire. It
// models what the paper's deployment story takes for granted — app
// servers as full VMs behind a load balancer — concretely enough to
// lose: CIDR-allocated per-VM addresses on a virtual switch, per-link
// latency/bandwidth, TCP-like connections with a SYN backlog that
// refuses on overflow (the listen(2)/ECONNREFUSED semantics of
// internal/guest/net.go, reproduced at the wire), ACK-clocked
// retransmission with seeded-jitter exponential backoff, and
// connection-level timeouts. A family of fault sites (fabric/partition,
// fabric/loss, fabric/delay, fabric/flap) lets a seeded storm split the
// network asymmetrically, drop or delay individual segments, and flap
// links mid-connection — all replayable bit-for-bit from one seed.
package fabric

import (
	"fmt"

	"lupine/internal/faults"
	"lupine/internal/simclock"
	"lupine/internal/telemetry"
)

// Fault-injection sites owned by the fabric. The rule decides WHEN the
// fault is active (window, probability, nth hit); for partition the
// Param decides WHICH directed traffic it cuts, so one plan can split
// the network asymmetrically.
const (
	// SitePartition blackholes matching segments. Param selects the cut:
	// 0 drops everything in the window; +n drops segments INTO node n
	// (others cannot reach it, its own traffic still flows); -n drops
	// segments OUT OF node n (it answers into the void). Node ids are
	// assigned by AddNode starting at 1. Non-matching segments pass.
	SitePartition = "fabric/partition"
	// SiteLoss drops the segment it fires on; the sender pays a
	// retransmission timeout and tries again.
	SiteLoss = "fabric/loss"
	// SiteDelay adds Param microseconds (default 100) to the segment's
	// propagation latency.
	SiteDelay = "fabric/delay"
	// SiteFlap takes the link between the segment's two endpoints down
	// for Param microseconds (default 500), both directions, dropping the
	// triggering segment too — a flapping cable mid-connection.
	SiteFlap = "fabric/flap"
	// SiteTrunkCut blackholes inter-zone segments on the trunk between
	// two switches. Param selects the directed cut over 1-based zone ids:
	// 0 cuts ALL inter-zone traffic, f*1000+t cuts zone f -> zone t, with
	// f or t == 0 as a wildcard (Param 3 cuts everything INTO zone 3,
	// Param 3000 cuts everything OUT OF zone 3). Same-zone segments never
	// consult this site.
	SiteTrunkCut = "fabric/trunk-cut"
)

func init() {
	faults.RegisterSite(SitePartition, "fabric",
		"segment blackholed by a network partition; Param 0=all, +n=into node n, -n=out of node n (asymmetric)")
	faults.RegisterSite(SiteLoss, "fabric",
		"segment lost on the wire; the sender retransmits with seeded-jitter backoff")
	faults.RegisterSite(SiteDelay, "fabric",
		"segment delayed by Param microseconds of extra propagation latency")
	faults.RegisterSite(SiteFlap, "fabric",
		"the segment's link flaps down for Param microseconds, dropping traffic in both directions")
	faults.RegisterSite(SiteTrunkCut, "fabric",
		"inter-zone segment blackholed on the trunk; Param 0=all, f*1000+t cuts zone f->t (0 wildcards either side)")
}

// SOMAXCONN mirrors internal/guest.SOMAXCONN: the fabric's listener
// backlog obeys the same listen(2) clamping rules as the guest network
// stack it models the wire for (a parity test pins the two constants
// together).
const SOMAXCONN = 128

// ctlBytes is the modeled size of control segments (SYN, SYN-ACK, RST,
// ACK, probes): a headers-only frame.
const ctlBytes = 64

// Scheduler is the event engine the fabric runs on. The fleet front-end
// passes itself, so fabric events interleave deterministically with
// dispatch, probe and autoscaler events on one virtual-time heap.
type Scheduler interface {
	Now() simclock.Time
	Schedule(at simclock.Time, fn func(now simclock.Time))
}

// LinkSpec models one node's access link to the switch.
type LinkSpec struct {
	Latency   simclock.Duration // one-way propagation to the switch
	Bandwidth int64             // egress bytes per virtual second; 0 = infinite
}

// Params tunes a Network. All durations are virtual.
type Params struct {
	CIDR        string   // address block for AddNode allocations
	DefaultLink LinkSpec // access link used when AddNode gets a zero spec

	// Retransmission: a lost segment is resent after
	// RTO * RTOFactor^(attempt-1) + jitter in [0, RTOJitter), at most
	// MaxRetransmits times for data and ConnectRetries times for SYNs;
	// exhaustion fails the connection with ErrTimeout.
	RTO            simclock.Duration
	RTOFactor      int
	RTOJitter      simclock.Duration
	MaxRetransmits int
	ConnectRetries int

	// DataDropSite and ProbeDropSite, when non-empty, are extra fault
	// sites consulted for data and probe segments respectively — the
	// fleet plugs its legacy fleet/dispatch-drop and fleet/probe-drop
	// sites in here so existing storm plans keep their meaning on the
	// real wire.
	DataDropSite  string
	ProbeDropSite string

	// Seed drives retransmission jitter (independent of the injector's
	// fire stream).
	Seed uint64
}

// DefaultParams is a 10 Gbps / 5 µs-per-link fabric with production-ish
// TCP timers scaled to the simulation's microsecond world.
func DefaultParams() Params {
	const us = simclock.Microsecond
	return Params{
		CIDR:           "10.0.0.0/16",
		DefaultLink:    LinkSpec{Latency: 5 * us, Bandwidth: 1250 * 1000 * 1000},
		RTO:            200 * us,
		RTOFactor:      2,
		RTOJitter:      50 * us,
		MaxRetransmits: 4,
		ConnectRetries: 3,
		Seed:           1,
	}
}

// Stats is the fabric's wire accounting.
type Stats struct {
	Segments    int // transmissions attempted (retransmits included)
	Delivered   int // segments that reached their destination
	Dropped     int // segments lost to faults or down links
	Retransmits int // segments re-sent after a presumed loss
	Established int // connections that completed the handshake
	Refused     int // connections RST because the server was down
	Overflows   int // connections RST because the SYN backlog was full
	Timeouts    int // connections failed by retransmit exhaustion or response timeout
	ProbesSent  int
	ProbesOK    int

	// Multi-switch accounting: segments that crossed an inter-zone trunk,
	// and the subset the trunk-cut site blackholed.
	TrunkSegments int
	TrunkCuts     int
}

// Network is one virtual switch plus every NIC attached to it.
type Network struct {
	params Params
	sched  Scheduler
	inj    *faults.Injector
	rng    *faults.Stream
	subnet *Subnet
	nodes  []*Node

	busyUntil     map[int]simclock.Time    // per-node egress serialization
	linkDownUntil map[[2]int]simclock.Time // flapped links, keyed by sorted id pair

	// Multi-switch topology: every node lives in a zone (one virtual
	// switch per zone; zone "" is the default single-switch world), and
	// inter-zone traffic crosses a trunk link with its own latency,
	// bandwidth serialization, and the trunk-cut fault site.
	zoneIDs   map[string]int           // 1-based ids in registration order
	zoneNames []string                 // id-1 -> name
	trunks    map[[2]int]LinkSpec      // per sorted zone-id pair; absent = zero-cost trunk
	trunkBusy map[[2]int]simclock.Time // trunk egress serialization, directed pair

	connSeq    int
	probeSeq   int
	probeTable map[int]*probe
	stats      Stats

	tr      *telemetry.Tracer
	trTrack string
}

// New builds a network on the scheduler. inj may be nil (a clean wire).
func New(params Params, sched Scheduler, inj *faults.Injector) (*Network, error) {
	if params.CIDR == "" {
		params.CIDR = DefaultParams().CIDR
	}
	subnet, err := ParseCIDR(params.CIDR)
	if err != nil {
		return nil, err
	}
	if params.RTO <= 0 {
		params.RTO = DefaultParams().RTO
	}
	if params.RTOFactor < 1 {
		params.RTOFactor = 1
	}
	if params.MaxRetransmits < 0 {
		params.MaxRetransmits = 0
	}
	if params.ConnectRetries < 0 {
		params.ConnectRetries = 0
	}
	return &Network{
		params:        params,
		sched:         sched,
		inj:           inj,
		rng:           faults.NewStream(params.Seed ^ 0xFAB51C),
		subnet:        subnet,
		busyUntil:     make(map[int]simclock.Time),
		linkDownUntil: make(map[[2]int]simclock.Time),
		zoneIDs:       make(map[string]int),
		trunks:        make(map[[2]int]LinkSpec),
		trunkBusy:     make(map[[2]int]simclock.Time),
	}, nil
}

// zoneID interns a zone name, assigning 1-based ids in registration
// order — the id space SiteTrunkCut params address. Zone "" (the default
// single-switch world) is id 0 and never crosses a trunk.
func (n *Network) zoneID(zone string) int {
	if zone == "" {
		return 0
	}
	if id, ok := n.zoneIDs[zone]; ok {
		return id
	}
	id := len(n.zoneNames) + 1
	n.zoneIDs[zone] = id
	n.zoneNames = append(n.zoneNames, zone)
	return id
}

// ZoneID reports the 1-based id of a registered zone (0 if unknown or
// the default zone) — the address space trunk-cut plans are written in.
func (n *Network) ZoneID(zone string) int {
	if zone == "" {
		return 0
	}
	return n.zoneIDs[zone]
}

// SetTrunk installs the trunk link crossed by segments between zones a
// and b (symmetric spec; egress serialization is per direction). Zones
// are registered on first use, so SetTrunk can run before any AddNodeZone
// and still pin the zone-id order.
func (n *Network) SetTrunk(a, b string, spec LinkSpec) {
	ai, bi := n.zoneID(a), n.zoneID(b)
	if ai == 0 || bi == 0 || ai == bi {
		panic(fmt.Sprintf("fabric: bad trunk %q<->%q", a, b))
	}
	n.trunks[pairKey(ai, bi)] = spec
}

// Observe attaches the telemetry plane: a span per connection, instant
// events per retransmission and per dropped segment — the pre-trip wire
// history flight recordings need. Nil-safe; a fabric without telemetry
// pays nothing on the segment path.
func (n *Network) Observe(tr *telemetry.Tracer, track string) {
	n.tr = tr
	n.trTrack = track
}

// Stats returns the wire accounting so far.
func (n *Network) Stats() Stats { return n.stats }

// Node is one NIC on the switch: a VM, or the front-end itself.
type Node struct {
	net  *Network
	id   int // 1-based; SitePartition params address this
	name string
	ip   IP
	link LinkSpec
	zone int // zone id; 0 = the default zone (no trunks crossed)

	// alive is the ground-truth liveness gate: a dead VM neither answers
	// SYNs nor ACKs data. Nil means always up.
	alive func(now simclock.Time) bool

	// egressCut blackholes every segment this NIC sends — switch-port
	// isolation, the quarantine a containment plane applies so a
	// compromised guest's lateral probes die at the first hop. Ingress
	// still flows: the victim hears the world but cannot answer it.
	egressCut bool

	listeners map[int]*Listener
}

// SetEgressCut isolates (or restores) the node's switch port: while
// cut, everything it sends drops at the first hop with reason
// "egress-cut". Deliberate containment, not a fault site — the
// injector's streams never see it.
func (nd *Node) SetEgressCut(cut bool) { nd.egressCut = cut }

// EgressCut reports whether the node's switch port is isolated.
func (nd *Node) EgressCut() bool { return nd.egressCut }

// AddNode attaches a NIC, allocating the next address in the block.
// A zero link spec inherits the network default. Node ids count from 1
// in attachment order — the id space SitePartition params address.
func (n *Network) AddNode(name string, link LinkSpec) (*Node, error) {
	return n.AddNodeZone(name, "", link)
}

// AddNodeZone is AddNode onto a named zone's switch: traffic between
// nodes of different zones crosses the inter-zone trunk (SetTrunk) and
// the trunk-cut fault site. Zone "" is the default switch.
func (n *Network) AddNodeZone(name, zone string, link LinkSpec) (*Node, error) {
	ip, err := n.subnet.Alloc()
	if err != nil {
		return nil, err
	}
	if link.Latency == 0 && link.Bandwidth == 0 {
		link = n.params.DefaultLink
	}
	nd := &Node{
		net:       n,
		id:        len(n.nodes) + 1,
		name:      name,
		ip:        ip,
		link:      link,
		zone:      n.zoneID(zone),
		listeners: make(map[int]*Listener),
	}
	n.nodes = append(n.nodes, nd)
	return nd, nil
}

// ID reports the node's 1-based id (the partition-param address space).
func (nd *Node) ID() int { return nd.id }

// IP reports the node's allocated address.
func (nd *Node) IP() IP { return nd.ip }

// Name reports the node's display name.
func (nd *Node) Name() string { return nd.name }

// Zone reports the name of the zone this node's NIC is switched into;
// "" is the default zone.
func (nd *Node) Zone() string {
	if nd.zone == 0 {
		return ""
	}
	return nd.net.zoneNames[nd.zone-1]
}

// SetAlive installs the ground-truth liveness gate.
func (nd *Node) SetAlive(fn func(now simclock.Time) bool) { nd.alive = fn }

func (nd *Node) up(now simclock.Time) bool { return nd.alive == nil || nd.alive(now) }

// Listener is a bound, listening L4 endpoint with a SYN backlog.
// Completed handshakes wait here until the owner Accepts them; a SYN
// arriving at a full backlog is refused with a RST — the same
// cap-and-refuse semantics as guest/net.go's ListenBacklog path, which
// is exactly the fleet's shed signal.
type Listener struct {
	node    *Node
	port    int
	cap     int
	backlog []*Conn

	// OnPending, when set, fires every time a connection lands in the
	// backlog — the owner's cue to try an Accept.
	OnPending func(now simclock.Time)
}

// Listen binds a listener on port with the given backlog cap, applying
// the listen(2) clamping rules (below 1 raised to 1, above SOMAXCONN
// clamped down). Re-binding a bound port is a programming error.
func (nd *Node) Listen(port, backlog int) *Listener {
	if _, dup := nd.listeners[port]; dup {
		panic(fmt.Sprintf("fabric: node %s: duplicate listener on port %d", nd.name, port))
	}
	if backlog < 1 {
		backlog = 1
	}
	if backlog > SOMAXCONN {
		backlog = SOMAXCONN
	}
	l := &Listener{node: nd, port: port, cap: backlog}
	nd.listeners[port] = l
	return l
}

// pending counts live (non-closed) connections waiting in the backlog.
func (l *Listener) pending() int {
	n := 0
	for _, c := range l.backlog {
		if !c.closed {
			n++
		}
	}
	return n
}

// Pending reports how many connections are waiting to be accepted.
func (l *Listener) Pending() int { return l.pending() }

// Accept pops the oldest live pending connection, or nil. Connections
// whose client already gave up (timed out) are discarded in passing,
// like a dead entry in an accept queue.
func (l *Listener) Accept(now simclock.Time) *Conn {
	for len(l.backlog) > 0 {
		c := l.backlog[0]
		l.backlog = l.backlog[1:]
		if c.closed {
			continue
		}
		c.srvAccepted = true
		return c
	}
	return nil
}

// --- segment engine ---

type segKind int

const (
	segSYN segKind = iota
	segSYNACK
	segRST
	segData // request or response payload
	segACK
	segProbe
	segProbeReply
)

func (k segKind) String() string {
	switch k {
	case segSYN:
		return "syn"
	case segSYNACK:
		return "syn-ack"
	case segRST:
		return "rst"
	case segData:
		return "data"
	case segACK:
		return "ack"
	case segProbe:
		return "probe"
	case segProbeReply:
		return "probe-reply"
	}
	return "?"
}

// segment is one frame in flight.
type segment struct {
	kind     segKind
	from, to *Node
	size     int
	conn     *Conn // nil for probes
	seq      int   // xmit identity being carried (SYN/data) or acked (ACK)
	rstErr   error // for segRST: why
	probeID  int
	response bool // for segData: server->client payload
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// transmit pushes one segment onto the wire: fault gauntlet, egress
// serialization, propagation, then delivery. Drops are silent to the
// sender — recovery is the retransmission machinery's job, exactly like
// the real thing.
func (n *Network) transmit(s *segment, now simclock.Time) {
	n.stats.Segments++
	// Deliberate isolation first: a quarantined port's segments never
	// reach the fault gauntlet, so arming wire sites does not perturb
	// the injector streams a contained backend would have drawn.
	if s.from.egressCut {
		n.drop(s, "egress-cut", now)
		return
	}
	// Fault gauntlet, in a fixed order so runs replay. A segment dies on
	// the first match; later sites never observe it.
	if until, down := n.linkDownUntil[pairKey(s.from.id, s.to.id)]; down && now < until {
		n.drop(s, "link-down", now)
		return
	}
	if s.from.zone != s.to.zone {
		// Inter-zone traffic crosses the trunk and its fault site.
		// Same-zone segments never reach this branch, so single-zone
		// topologies draw exactly the injector stream they always did.
		n.stats.TrunkSegments++
		if d := n.inj.Hit(SiteTrunkCut, now); d.Fire && trunkCuts(d.Param, s) {
			n.stats.TrunkCuts++
			n.drop(s, "trunk-cut", now)
			return
		}
	}
	if d := n.inj.Hit(SitePartition, now); d.Fire && partitionCuts(d.Param, s) {
		n.drop(s, "partition", now)
		return
	}
	if d := n.inj.Hit(SiteFlap, now); d.Fire {
		us := d.Param
		if us <= 0 {
			us = 500
		}
		n.linkDownUntil[pairKey(s.from.id, s.to.id)] = now.Add(simclock.Duration(us) * simclock.Microsecond)
		n.drop(s, "flap", now)
		return
	}
	if d := n.inj.Hit(SiteLoss, now); d.Fire {
		n.drop(s, "loss", now)
		return
	}
	if site := n.extraDropSite(s); site != "" {
		if d := n.inj.Hit(site, now); d.Fire {
			n.drop(s, "site:"+site, now)
			return
		}
	}
	var extra simclock.Duration
	if d := n.inj.Hit(SiteDelay, now); d.Fire {
		us := d.Param
		if us <= 0 {
			us = 100
		}
		extra = simclock.Duration(us) * simclock.Microsecond
	}
	// Egress serialization on the sender's access link, then propagation
	// over both links. FIFO per egress port keeps the order deterministic.
	depart := now
	if busy := n.busyUntil[s.from.id]; busy > depart {
		depart = busy
	}
	if bw := s.from.link.Bandwidth; bw > 0 {
		depart = depart.Add(simclock.Duration(int64(s.size) * int64(simclock.Second) / bw))
	}
	n.busyUntil[s.from.id] = depart
	hop := s.from.link.Latency + s.to.link.Latency + extra
	if s.from.zone != s.to.zone {
		// Second serialization stage on the inter-zone trunk, directed
		// per zone pair, then the trunk's own propagation delay. An
		// unconfigured trunk is a zero-cost patch cable.
		spec := n.trunks[pairKey(s.from.zone, s.to.zone)]
		dir := [2]int{s.from.zone, s.to.zone}
		if busy := n.trunkBusy[dir]; busy > depart {
			depart = busy
		}
		if bw := spec.Bandwidth; bw > 0 {
			depart = depart.Add(simclock.Duration(int64(s.size) * int64(simclock.Second) / bw))
		}
		n.trunkBusy[dir] = depart
		hop += spec.Latency
	}
	arrive := depart.Add(hop)
	n.sched.Schedule(arrive, func(at simclock.Time) { n.deliver(s, at) })
}

// trunkCuts decides whether a trunk-cut payload blackholes this
// inter-zone segment: 0 cuts all trunks; f*1000+t cuts the directed
// zone pair f->t, with 0 on either side acting as a wildcard.
func trunkCuts(param int64, s *segment) bool {
	if param == 0 {
		return true
	}
	f, t := int(param/1000), int(param%1000)
	if f != 0 && f != s.from.zone {
		return false
	}
	if t != 0 && t != s.to.zone {
		return false
	}
	return true
}

// partitionCuts decides whether a partition payload cuts this segment:
// 0 cuts everything, +n cuts traffic into node n, -n cuts traffic out of
// node n.
func partitionCuts(param int64, s *segment) bool {
	switch {
	case param == 0:
		return true
	case param > 0:
		return s.to.id == int(param)
	default:
		return s.from.id == int(-param)
	}
}

func (n *Network) extraDropSite(s *segment) string {
	switch s.kind {
	case segData:
		return n.params.DataDropSite
	case segProbe, segProbeReply:
		return n.params.ProbeDropSite
	}
	return ""
}

func (n *Network) drop(s *segment, reason string, now simclock.Time) {
	n.stats.Dropped++
	if n.tr != nil {
		n.tr.Instant("fabric", n.trTrack, "wire:drop", now,
			telemetry.A("kind", s.kind.String()),
			telemetry.A("from", s.from.name),
			telemetry.A("to", s.to.name),
			telemetry.A("reason", reason))
	}
}

// deliver lands a segment at its destination NIC.
func (n *Network) deliver(s *segment, now simclock.Time) {
	n.stats.Delivered++
	switch s.kind {
	case segSYN:
		n.deliverSYN(s, now)
	case segSYNACK:
		s.conn.clientSYNACK(now)
	case segRST:
		s.conn.clientRST(s.rstErr, now)
	case segData:
		if s.response {
			s.conn.clientResponse(s.seq, now)
		} else {
			s.conn.serverRequest(s.seq, now)
		}
	case segACK:
		s.conn.ack(s.seq)
	case segProbe:
		n.deliverProbe(s, now)
	case segProbeReply:
		n.probeReturned(s.probeID, now)
	}
}

// deliverSYN is the server half of the handshake: liveness gate, then
// the SYN-backlog handoff — queue and SYN-ACK, or refuse with RST when
// the backlog is at cap (ECONNREFUSED at the wire).
func (n *Network) deliverSYN(s *segment, now simclock.Time) {
	c := s.conn
	if c.closed {
		return // client already gave up
	}
	if !s.to.up(now) {
		n.send(&segment{kind: segRST, from: s.to, to: s.from, size: ctlBytes, conn: c, seq: s.seq, rstErr: ErrRefused}, now)
		return
	}
	if c.srvQueued || c.srvAccepted {
		// Duplicate SYN (lost SYN-ACK): re-answer idempotently.
		n.send(&segment{kind: segSYNACK, from: s.to, to: s.from, size: ctlBytes, conn: c, seq: s.seq}, now)
		return
	}
	l := s.to.listeners[c.raddr.Port]
	if l == nil {
		n.send(&segment{kind: segRST, from: s.to, to: s.from, size: ctlBytes, conn: c, seq: s.seq, rstErr: ErrRefused}, now)
		return
	}
	if l.pending() >= l.cap {
		n.stats.Overflows++
		n.send(&segment{kind: segRST, from: s.to, to: s.from, size: ctlBytes, conn: c, seq: s.seq, rstErr: ErrOverflow}, now)
		return
	}
	c.srvQueued = true
	l.backlog = append(l.backlog, c)
	n.send(&segment{kind: segSYNACK, from: s.to, to: s.from, size: ctlBytes, conn: c, seq: s.seq}, now)
	if l.OnPending != nil {
		l.OnPending(now)
	}
}

// send transmits a fire-and-forget control segment (no retransmission:
// recovery rides on the peer's timers).
func (n *Network) send(s *segment, now simclock.Time) { n.transmit(s, now) }

// --- probes ---

type probe struct {
	done bool
	cb   func(ok bool, now simclock.Time)
}

// Probe sends one heartbeat datagram from -> to and reports the verdict
// exactly once: true when the reply lands before timeout, false
// otherwise. Probes model UDP heartbeats: no retransmission — a lost
// probe IS a failed probe, which is what makes one-sided partitions
// visible to the health checker as timeouts.
func (n *Network) Probe(from, to *Node, timeout simclock.Duration, cb func(ok bool, now simclock.Time)) {
	n.probeSeq++
	id := n.probeSeq
	n.stats.ProbesSent++
	pr := &probe{cb: cb}
	n.probes()[id] = pr
	now := n.sched.Now()
	n.transmit(&segment{kind: segProbe, from: from, to: to, size: ctlBytes, probeID: id}, now)
	n.sched.Schedule(now.Add(timeout), func(at simclock.Time) {
		if !pr.done {
			pr.done = true
			delete(n.probes(), id)
			cb(false, at)
		}
	})
}

// probes is the per-network in-flight probe table.
func (n *Network) probes() map[int]*probe {
	if n.probeTable == nil {
		n.probeTable = make(map[int]*probe)
	}
	return n.probeTable
}

func (n *Network) deliverProbe(s *segment, now simclock.Time) {
	if !s.to.up(now) {
		return // a dead VM answers nothing
	}
	n.transmit(&segment{kind: segProbeReply, from: s.to, to: s.from, size: ctlBytes, probeID: s.probeID}, now)
}

func (n *Network) probeReturned(id int, now simclock.Time) {
	pr := n.probes()[id]
	if pr == nil || pr.done {
		return
	}
	pr.done = true
	delete(n.probes(), id)
	n.stats.ProbesOK++
	pr.cb(true, now)
}
