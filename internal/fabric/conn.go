package fabric

import (
	"errors"
	"strconv"

	"lupine/internal/simclock"
	"lupine/internal/telemetry"
)

// Terminal connection errors. The distinction matters to the caller: a
// refused connection is a dead server (failure-detect fast), an overflow
// is backpressure (the load balancer's shed signal), a timeout is a
// partition, a flapping link or a server that died mid-flight.
var (
	ErrRefused  = errors.New("fabric: connection refused (no listener)")
	ErrOverflow = errors.New("fabric: connection refused (SYN backlog full)")
	ErrTimeout  = errors.New("fabric: connection timed out")
)

// ConnCallbacks is the client side's view of a connection's life. Each
// fires at most once; exactly one of Failed or Response fires for every
// dialed connection, which is what lets the fleet account every request
// exactly once.
type ConnCallbacks struct {
	// Established fires when the SYN-ACK lands: the connection is live
	// (possibly still waiting in the server's accept queue).
	Established func(c *Conn, now simclock.Time)
	// Failed fires on any terminal failure: ErrRefused, ErrOverflow, or
	// ErrTimeout (retransmit exhaustion or response timeout).
	Failed func(c *Conn, err error, now simclock.Time)
	// Response fires when the server's response payload is delivered.
	Response func(c *Conn, now simclock.Time)
}

// xmit is one reliably-delivered logical segment: the sender retransmits
// on an RTO clock until the matching ACK (or SYN-ACK/RST) lands, then
// gives up after the configured attempts and fails the connection.
type xmit struct {
	conn     *Conn
	kind     segKind
	size     int
	seq      int
	attempt  int // retransmissions so far
	max      int
	acked    bool
	response bool
}

// Conn is one TCP-like connection between a client node and a server
// listener. The fabric owns the state machine; the fleet owns the
// decisions (when to accept, when to respond).
type Conn struct {
	net    *Network
	id     int
	client *Node
	server *Node
	raddr  Addr

	dialedAt simclock.Time
	closed   bool
	outcome  string // for the telemetry span
	rexmits  int    // retransmissions spent on this connection, both directions

	// client side
	cbs           ConnCallbacks
	established   bool
	respDelivered bool

	// server side
	srvQueued   bool // sitting in the listener backlog
	srvAccepted bool
	reqArrived  bool
	onRequest   func(now simclock.Time)

	xmits map[int]*xmit
}

// Dial opens a connection from nd to dst, beginning the handshake now.
// The callbacks resolve its fate exactly once.
func (nd *Node) Dial(dst *Node, port int, cbs ConnCallbacks) *Conn {
	n := nd.net
	n.connSeq++
	c := &Conn{
		net:      n,
		id:       n.connSeq,
		client:   nd,
		server:   dst,
		raddr:    Addr{IP: dst.ip, Port: port},
		dialedAt: n.sched.Now(),
		cbs:      cbs,
		xmits:    make(map[int]*xmit),
	}
	c.sendReliable(segSYN, ctlBytes, n.params.ConnectRetries, false)
	return c
}

// ID reports the connection's fabric-wide id.
func (c *Conn) ID() int { return c.id }

// Server reports the node the connection was dialed at.
func (c *Conn) Server() *Node { return c.server }

// Established reports whether the handshake completed.
func (c *Conn) Established() bool { return c.established }

// Closed reports whether the connection reached a terminal state.
func (c *Conn) Closed() bool { return c.closed }

// Retransmits reports retransmissions spent on this connection so far.
func (c *Conn) Retransmits() int { return c.rexmits }

// sendReliable starts a reliably-delivered logical segment from the
// side implied by kind/response.
func (c *Conn) sendReliable(kind segKind, size, maxRetries int, response bool) {
	c.net.connSeq++
	x := &xmit{conn: c, kind: kind, size: size, seq: c.net.connSeq, max: maxRetries, response: response}
	c.xmits[x.seq] = x
	c.push(x, c.net.sched.Now())
}

// push transmits an xmit's segment and arms its retransmission timer.
func (c *Conn) push(x *xmit, now simclock.Time) {
	from, to := c.client, c.server
	if x.kind == segData && x.response {
		from, to = c.server, c.client
	}
	c.net.transmit(&segment{kind: x.kind, from: from, to: to, size: x.size, conn: c, seq: x.seq, response: x.response}, now)
	rto := c.net.rto(x.attempt)
	c.net.sched.Schedule(now.Add(rto), func(at simclock.Time) { c.rexmitCheck(x, at) })
}

// rexmitCheck fires when an xmit's RTO elapses: still un-acked means the
// segment (or its ACK) was lost — retransmit, or give up and fail the
// connection with a timeout.
func (c *Conn) rexmitCheck(x *xmit, now simclock.Time) {
	if x.acked || c.closed {
		return
	}
	// A response whose client already resolved is abandoned silently.
	if x.response && c.respDelivered {
		return
	}
	if x.attempt >= x.max {
		if x.response {
			return // server gives up; the client's own timeout resolves it
		}
		c.fail(ErrTimeout, now)
		return
	}
	x.attempt++
	c.rexmits++
	c.net.stats.Retransmits++
	if tr := c.net.tr; tr != nil {
		tr.Instant("fabric", c.net.trTrack, "rexmit", now,
			telemetry.A("conn", strconv.Itoa(c.id)),
			telemetry.A("kind", x.kind.String()),
			telemetry.A("attempt", strconv.Itoa(x.attempt)))
	}
	c.push(x, now)
}

// rto is the seeded-jitter exponential backoff schedule.
func (n *Network) rto(attempt int) simclock.Duration {
	d := n.params.RTO
	for i := 0; i < attempt; i++ {
		d *= simclock.Duration(n.params.RTOFactor)
	}
	if n.params.RTOJitter > 0 {
		d += simclock.Duration(n.rng.Intn(int(n.params.RTOJitter)))
	}
	return d
}

// ack marks the xmit carried by seq as delivered.
func (c *Conn) ack(seq int) {
	if x := c.xmits[seq]; x != nil {
		x.acked = true
		delete(c.xmits, seq)
	}
}

// ackAll resolves every outstanding xmit of the given kind (SYN-ACK and
// RST both answer the SYN without naming its seq).
func (c *Conn) ackAll(kind segKind) {
	for seq, x := range c.xmits {
		if x.kind == kind {
			x.acked = true
			delete(c.xmits, seq)
		}
	}
}

// clientSYNACK completes the client half of the handshake.
func (c *Conn) clientSYNACK(now simclock.Time) {
	c.ackAll(segSYN)
	if c.closed || c.established {
		return
	}
	c.established = true
	c.net.stats.Established++
	if c.cbs.Established != nil {
		c.cbs.Established(c, now)
	}
}

// clientRST resolves the dial as refused.
func (c *Conn) clientRST(err error, now simclock.Time) {
	c.ackAll(segSYN)
	if c.closed || c.established {
		return
	}
	c.net.stats.Refused++ // overflow and dead-server RSTs both land here; Overflows counted at the listener
	c.fail(err, now)
}

// SendRequest ships the request payload to the server and arms the
// response deadline: if the response payload has not landed within
// respTimeout the connection fails with ErrTimeout — covering a server
// that died mid-service, a cut return path, or a backlog that never
// drains.
func (c *Conn) SendRequest(size int, respTimeout simclock.Duration, now simclock.Time) {
	if c.closed {
		return
	}
	c.sendReliable(segData, size, c.net.params.MaxRetransmits, false)
	c.net.sched.Schedule(now.Add(respTimeout), func(at simclock.Time) {
		if !c.closed && !c.respDelivered {
			c.fail(ErrTimeout, at)
		}
	})
}

// serverRequest lands the request payload at the server: ACK (the server
// is alive to do so) and hand it to whoever accepted the connection.
func (c *Conn) serverRequest(seq int, now simclock.Time) {
	if !c.server.up(now) {
		return // dead VMs don't ACK; the client retransmits into the void
	}
	c.net.send(&segment{kind: segACK, from: c.server, to: c.client, size: ctlBytes, conn: c, seq: seq}, now)
	if c.reqArrived {
		return // retransmitted duplicate
	}
	c.reqArrived = true
	if c.onRequest != nil && c.srvAccepted {
		fn := c.onRequest
		c.onRequest = nil
		fn(now)
	}
}

// WhenRequest arms the server-side continuation for the request payload:
// fires immediately if it already landed, otherwise when it does. The
// fleet calls this right after Accept.
func (c *Conn) WhenRequest(now simclock.Time, fn func(now simclock.Time)) {
	if c.reqArrived {
		fn(now)
		return
	}
	c.onRequest = fn
}

// Respond ships the response payload back to the client (reliably, up to
// the retransmission budget — past that the client's response deadline
// is the backstop).
func (c *Conn) Respond(size int, now simclock.Time) {
	if c.closed {
		return
	}
	c.sendReliable(segData, size, c.net.params.MaxRetransmits, true)
}

// clientResponse lands the response payload: resolve the connection as
// served and ACK so the server stops retransmitting.
func (c *Conn) clientResponse(seq int, now simclock.Time) {
	c.net.send(&segment{kind: segACK, from: c.client, to: c.server, size: ctlBytes, conn: c, seq: seq}, now)
	if c.closed || c.respDelivered {
		return
	}
	c.respDelivered = true
	c.close("served", now)
	if c.cbs.Response != nil {
		c.cbs.Response(c, now)
	}
}

// fail resolves the connection as failed, exactly once.
func (c *Conn) fail(err error, now simclock.Time) {
	if c.closed {
		return
	}
	if errors.Is(err, ErrTimeout) {
		c.net.stats.Timeouts++
	}
	c.close(err.Error(), now)
	if c.cbs.Failed != nil {
		c.cbs.Failed(c, err, now)
	}
}

// close seals the state machine and emits the connection's span.
func (c *Conn) close(outcome string, now simclock.Time) {
	c.closed = true
	c.outcome = outcome
	c.xmits = nil
	if tr := c.net.tr; tr != nil {
		tr.Span("fabric", c.net.trTrack, "conn", c.dialedAt, now,
			telemetry.A("conn", strconv.Itoa(c.id)),
			telemetry.A("dst", c.server.name),
			telemetry.A("outcome", outcome),
			telemetry.A("rexmits", strconv.Itoa(c.rexmits)))
	}
}
