package fabric

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order. The fabric models a single
// flat L3 segment per Network, so four bytes are plenty; the type exists
// so addresses print like addresses instead of like integers.
type IP uint32

// String renders dotted-quad.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Addr is one L4 endpoint on the fabric.
type Addr struct {
	IP   IP
	Port int
}

// String renders ip:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// Subnet is a CIDR block handing out host addresses sequentially, the
// way ops-style tooling carves a bridge subnet per deployment: the
// network and broadcast addresses are reserved, .1 is conventionally the
// gateway (here: the front-end), and every VM NIC gets the next host.
type Subnet struct {
	base   IP
	prefix int
	next   uint32 // next host offset to hand out (starts at 1)
}

// ParseCIDR parses "a.b.c.d/n" into an allocator positioned at the first
// host address.
func ParseCIDR(s string) (*Subnet, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return nil, fmt.Errorf("fabric: CIDR %q: missing prefix length", s)
	}
	prefix, err := strconv.Atoi(s[slash+1:])
	if err != nil || prefix < 0 || prefix > 30 {
		return nil, fmt.Errorf("fabric: CIDR %q: prefix must be 0..30", s)
	}
	parts := strings.Split(s[:slash], ".")
	if len(parts) != 4 {
		return nil, fmt.Errorf("fabric: CIDR %q: not dotted-quad", s)
	}
	var ip uint32
	for _, p := range parts {
		b, err := strconv.Atoi(p)
		if err != nil || b < 0 || b > 255 {
			return nil, fmt.Errorf("fabric: CIDR %q: bad octet %q", s, p)
		}
		ip = ip<<8 | uint32(b)
	}
	mask := ^uint32(0) << (32 - uint32(prefix))
	if ip&^mask != 0 {
		return nil, fmt.Errorf("fabric: CIDR %q: host bits set in network address", s)
	}
	return &Subnet{base: IP(ip), prefix: prefix, next: 1}, nil
}

// String renders the block in CIDR notation.
func (s *Subnet) String() string { return fmt.Sprintf("%s/%d", s.base, s.prefix) }

// Hosts reports how many host addresses the block can hand out
// (all-zeros and all-ones are reserved).
func (s *Subnet) Hosts() int { return (1 << (32 - uint32(s.prefix))) - 2 }

// Alloc hands out the next host address, erroring when the block is
// exhausted so a fleet that outgrows its CIDR fails loudly.
func (s *Subnet) Alloc() (IP, error) {
	if int(s.next) > s.Hosts() {
		return 0, fmt.Errorf("fabric: subnet %s exhausted after %d hosts", s, s.Hosts())
	}
	ip := IP(uint32(s.base) + s.next)
	s.next++
	return ip, nil
}
