// Package lupine is a from-scratch Go reproduction of "A Linux in
// Unikernel Clothing" (Kuo, Williams, Koller, Mohan — EuroSys 2020).
//
// The real Lupine artifact is a specialized Linux kernel build plus the
// Kernel Mode Linux patch running under Firecracker on KVM hardware. This
// repository substitutes a deterministic simulation substrate for the
// hardware stack and rebuilds everything above it: a Kconfig language
// engine and synthetic Linux 4.0 option tree, a kernel build and boot
// model, monitor models, a discrete-event guest kernel (processes, VFS,
// sockets, futexes, epoll), the KML patch pipeline, a real ext2 rootfs
// writer/reader, the top-20 Docker Hub application models, the unikernel
// comparators, and a benchmark harness that regenerates every table and
// figure of the paper's evaluation. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package lupine
