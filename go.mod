module lupine

go 1.22
