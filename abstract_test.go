package lupine_test

// The "abstract test": one integration test per claim in the paper's
// abstract, run through the public pipeline. If this file passes, the
// reproduction stands.

import (
	"testing"

	"lupine/internal/apps"
	"lupine/internal/boot"
	"lupine/internal/core"
	"lupine/internal/guest"
	"lupine/internal/kerneldb"
	"lupine/internal/libos"
	"lupine/internal/vmm"
)

func spec(t *testing.T, name string) (core.Spec, *apps.App) {
	t.Helper()
	a, err := apps.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{
		Manifest: a.Manifest(),
		Image:    a.ContainerImage(),
		Program:  func(p *guest.Proc, probeOnly bool) int { return a.Main(p, probeOnly) },
	}, a
}

// "small image size (4 MB)"
func TestAbstractImageSize(t *testing.T) {
	db := kerneldb.MustLoad()
	s, _ := spec(t, "hello-world")
	u, err := core.Build(db, s, core.BuildOpts{KML: true})
	if err != nil {
		t.Fatal(err)
	}
	if mb := u.Kernel.MegabytesMB(); mb < 3.8 || mb > 4.4 {
		t.Errorf("image = %.2f MB, abstract claims ~4 MB", mb)
	}
}

// "fast boot time (23 ms)"
func TestAbstractBootTime(t *testing.T) {
	db := kerneldb.MustLoad()
	s, _ := spec(t, "hello-world")
	u, err := core.Build(db, s, core.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := boot.Simulate(u.Kernel, vmm.Firecracker(), int64(len(u.RootFS)))
	if err != nil {
		t.Fatal(err)
	}
	if ms := r.Total.Milliseconds(); ms < 20 || ms > 26 {
		t.Errorf("boot = %.1f ms, abstract claims ~23 ms", ms)
	}
}

// "low memory footprint (21 MB)"
func TestAbstractFootprint(t *testing.T) {
	db := kerneldb.MustLoad()
	s, a := spec(t, "hello-world")
	u, err := core.Build(db, s, core.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := u.MemoryFootprint(core.BootOpts{}, a.SuccessText)
	if err != nil {
		t.Fatal(err)
	}
	if mib := fp / guest.MiB; mib < 18 || mib > 24 {
		t.Errorf("footprint = %d MiB, abstract claims ~21 MB", mib)
	}
}

// "system call latency (20 µs)" — the abstract's unit is a typo for ns in
// context; Figure 9 shows 0.020 µs for the KML null call.
func TestAbstractSyscallLatency(t *testing.T) {
	db := kerneldb.MustLoad()
	s, _ := spec(t, "hello-world")
	u, err := core.Build(db, s, core.BuildOpts{KML: true})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := u.Boot(core.BootOpts{ProbeOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	var perNull float64
	vm.Guest.Spawn("lat", func(p *guest.Proc) int {
		start := p.Kernel().Now()
		const n = 1000
		for i := 0; i < n; i++ {
			p.Getppid()
		}
		perNull = p.Kernel().Now().Sub(start).Microseconds() / n
		return 0
	})
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if perNull < 0.015 || perNull > 0.025 {
		t.Errorf("null syscall = %.3f us, want ~0.020", perNull)
	}
}

// "up to 33% higher throughput than microVM" and "outperforming at least
// one reference unikernel in all of the above dimensions".
func TestAbstractThroughputAndDominance(t *testing.T) {
	db := kerneldb.MustLoad()
	s, a := spec(t, "nginx")
	build := func(f func() (*core.Unikernel, error)) float64 {
		t.Helper()
		u, err := f()
		if err != nil {
			t.Fatal(err)
		}
		vm, err := u.Boot(core.BootOpts{})
		if err != nil {
			t.Fatal(err)
		}
		var res apps.BenchResult
		apps.SpawnAB(vm.Guest, a.Port, 200, 1, &res)
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	micro := build(func() (*core.Unikernel, error) { return core.BuildMicroVM(db, s) })
	lup := build(func() (*core.Unikernel, error) { return core.Build(db, s, core.BuildOpts{KML: true}) })
	if gain := lup/micro - 1; gain < 0.25 || gain > 0.40 {
		t.Errorf("nginx-conn gain = %.0f%%, abstract claims up to 33%%", gain*100)
	}

	// Dominance over at least one reference unikernel in every dimension
	// (it is HermiTux for boot; OSv for image; all three for footprint
	// and throughput).
	herm := libos.HermiTux()
	zfs, _ := libos.OSv("zfs")
	u, _ := core.Build(db, spec2(t, "hello-world"), core.BuildOpts{KML: true})
	osvImg, _ := zfs.ImageSize("hello-world")
	if u.Kernel.Size >= osvImg {
		t.Error("lupine image not below OSv's")
	}
	nokml, _ := core.Build(db, spec2(t, "hello-world"), core.BuildOpts{})
	r, _ := boot.Simulate(nokml.Kernel, vmm.Firecracker(), int64(len(nokml.RootFS)))
	hermBoot, _ := herm.BootTime("hello-world")
	if r.Total >= hermBoot {
		t.Error("lupine boot not below HermiTux's")
	}
}

func spec2(t *testing.T, name string) core.Spec {
	s, _ := spec(t, name)
	return s
}

// "whereas many unikernels simply crash ... graceful degradation".
func TestAbstractGracefulDegradation(t *testing.T) {
	for _, s := range libos.All() {
		if s.Fork() == nil {
			t.Errorf("%s did not fail on fork", s.Name)
		}
	}
	db := kerneldb.MustLoad()
	sp, _ := spec(t, "hello-world")
	sp.Program = func(p *guest.Proc, probeOnly bool) int {
		if _, e := p.Fork(func(c *guest.Proc) int { return 0 }); e != guest.OK {
			return 1
		}
		p.Wait()
		p.Println("fork survived")
		return 0
	}
	u, err := core.Build(db, sp, core.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ok, console, err := u.RunAndCheck(core.BootOpts{}, "fork survived")
	if err != nil || !ok {
		t.Errorf("lupine fork failed: %v %q", err, console)
	}
}
