// Command jsoncheck exits nonzero unless every argument is a file
// containing valid JSON. check.sh uses it to validate trace exports
// without assuming a system python or jq.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	for _, path := range os.Args[1:] {
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !json.Valid(b) {
			fmt.Fprintf(os.Stderr, "%s: invalid JSON\n", path)
			os.Exit(1)
		}
	}
}
