#!/bin/sh
# Pre-PR gate: formatting, vet, and the full test suite under the race
# detector. Run from the repository root:  ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go test -race"
go test -race ./...

# The concurrency-sensitive planes (fleet event engine, network fabric,
# supervisor, snapshot store, memory accountant, guest balloon,
# telemetry plane, multi-region control plane, build pipeline + farm,
# attack plane, SLO plane) get a second racing pass with fresh test
# binaries: -count=2 defeats result caching and shakes out run-to-run
# nondeterminism the bit-for-bit replay guarantees forbid.
echo "== go test -race -count=2 (fleet, fabric, vmm, snapshot, hostmem, guest, telemetry, region, bunny, farm, attack, slo)"
go test -race -count=2 ./internal/fleet/... ./internal/fabric/... ./internal/vmm/... \
    ./internal/snapshot/... ./internal/hostmem/... ./internal/guest/... ./internal/telemetry/... \
    ./internal/region/... ./internal/bunny/... ./internal/farm/... ./internal/attack/... \
    ./internal/slo/...

# Every registered fault site must surface in the operator-facing
# catalog: the count of RegisterSite calls in non-test source must match
# what lupine-bench -list-faults prints (sites are the indented lines
# under each subsystem heading), or a new site shipped without being
# discoverable.
echo "== fault-site catalog"
registered=$(grep -rh --include='*.go' --exclude='*_test.go' 'faults\.RegisterSite(' internal/ | wc -l)
listed=$(go run ./cmd/lupine-bench -list-faults | grep -c '^  ')
if [ "$registered" -ne "$listed" ]; then
    echo "fault-site catalog mismatch: $registered RegisterSite calls in internal/, $listed listed by -list-faults" >&2
    exit 1
fi
echo "   $listed sites registered and listed"

# Trace determinism gate: two same-seed memstorm runs must export
# byte-identical, valid Chrome trace JSON. This is the telemetry plane's
# core contract — virtual-time spans only, no wall clocks.
echo "== trace determinism (memstorm, two same-seed runs)"
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/lupine-bench -run memstorm -trace-out="$tracedir/a.json" >/dev/null
go run ./cmd/lupine-bench -run memstorm -trace-out="$tracedir/b.json" >/dev/null
cmp "$tracedir/a.json" "$tracedir/b.json"
go run ./scripts/jsoncheck.go "$tracedir/a.json"
echo "   byte-identical and valid JSON"

# The same gate for the fabric plane: two same-seed netsplit storms —
# every partition, flap, loss, retransmission and breaker verdict on the
# virtual wire — must export byte-identical traces.
echo "== trace determinism (netsplit, two same-seed runs)"
go run ./cmd/lupine-bench -run netsplit -trace-out="$tracedir/na.json" >/dev/null
go run ./cmd/lupine-bench -run netsplit -trace-out="$tracedir/nb.json" >/dev/null
cmp "$tracedir/na.json" "$tracedir/nb.json"
go run ./scripts/jsoncheck.go "$tracedir/na.json"
echo "   byte-identical and valid JSON"

# And for the multi-region control plane: two same-seed regional storms
# — placement, probe verdicts, failover declarations, evacuation
# landings — must export byte-identical traces.
echo "== trace determinism (regionfail, two same-seed runs)"
go run ./cmd/lupine-bench -run regionfail -trace-out="$tracedir/ra.json" >/dev/null
go run ./cmd/lupine-bench -run regionfail -trace-out="$tracedir/rb.json" >/dev/null
cmp "$tracedir/ra.json" "$tracedir/rb.json"
go run ./scripts/jsoncheck.go "$tracedir/ra.json"
echo "   byte-identical and valid JSON"

# And for the build pipeline + heterogeneous fleet: two same-seed
# catalog runs — farm schedules, build-fault rebuilds, mixed-identity
# placement, per-identity restores and rollouts — must export
# byte-identical traces.
echo "== trace determinism (catalog, two same-seed runs)"
go run ./cmd/lupine-bench -run catalog -trace-out="$tracedir/ca.json" >/dev/null
go run ./cmd/lupine-bench -run catalog -trace-out="$tracedir/cb.json" >/dev/null
cmp "$tracedir/ca.json" "$tracedir/cb.json"
go run ./scripts/jsoncheck.go "$tracedir/ca.json"
echo "   byte-identical and valid JSON"

# And for the containment plane: two same-seed breach campaigns — every
# probe deflection, payload roll, lateral hop, canary detection,
# quarantine, repave landing and region evacuation — must export
# byte-identical traces.
echo "== trace determinism (breach, two same-seed runs)"
go run ./cmd/lupine-bench -run breach -trace-out="$tracedir/ba.json" >/dev/null
go run ./cmd/lupine-bench -run breach -trace-out="$tracedir/bb.json" >/dev/null
cmp "$tracedir/ba.json" "$tracedir/bb.json"
go run ./scripts/jsoncheck.go "$tracedir/ba.json"
echo "   byte-identical and valid JSON"

# SLO report determinism gate: two same-seed memstorm runs must export
# byte-identical SLO reports (objectives, burns, alerts, incident cause
# chains) and byte-identical OpenMetrics text — the SLO plane's own
# virtual-time-only contract, one layer above the traces.
echo "== SLO report determinism (memstorm, two same-seed runs)"
go run ./cmd/lupine-bench -run memstorm -slo-out="$tracedir/sa.json" -metrics-out="$tracedir/ma.json" >/dev/null
go run ./cmd/lupine-bench -run memstorm -slo-out="$tracedir/sb.json" -metrics-out="$tracedir/mb.json" >/dev/null
cmp "$tracedir/sa.json" "$tracedir/sb.json"
cmp "$tracedir/ma.json.prom" "$tracedir/mb.json.prom"
go run ./scripts/jsoncheck.go "$tracedir/sa.json"
echo "   byte-identical SLO report and OpenMetrics export, valid JSON"

# Wall-clock trajectory samples: how fast this machine's event engine
# chews through the storms, with the headline availability (and p99 /
# failover-detection p99) alongside so a perf fix that changes behavior
# shows in the same file. -bench-out appends, so the files accumulate a
# trajectory across runs instead of keeping only the latest sample.
echo "== bench records (BENCH_netsplit.json, BENCH_regionfail.json, BENCH_catalog.json, BENCH_breach.json)"
go run ./cmd/lupine-bench -bench-out=BENCH_netsplit.json
go run ./scripts/jsoncheck.go BENCH_netsplit.json
go run ./cmd/lupine-bench -bench=regionfail -bench-out=BENCH_regionfail.json
go run ./scripts/jsoncheck.go BENCH_regionfail.json
go run ./cmd/lupine-bench -bench=catalog -bench-out=BENCH_catalog.json
go run ./scripts/jsoncheck.go BENCH_catalog.json
go run ./cmd/lupine-bench -bench=breach -bench-out=BENCH_breach.json
go run ./scripts/jsoncheck.go BENCH_breach.json
echo "   appended to BENCH_netsplit.json, BENCH_regionfail.json, BENCH_catalog.json, BENCH_breach.json"

echo "== ok"
