#!/bin/sh
# Pre-PR gate: formatting, vet, and the full test suite under the race
# detector. Run from the repository root:  ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go test -race"
go test -race ./...

# The concurrency-sensitive planes (fleet event engine, supervisor,
# snapshot store, memory accountant, guest balloon, telemetry plane) get
# a second racing pass with fresh test binaries: -count=2 defeats result
# caching and shakes out run-to-run nondeterminism the bit-for-bit
# replay guarantees forbid.
echo "== go test -race -count=2 (fleet, vmm, snapshot, hostmem, guest, telemetry)"
go test -race -count=2 ./internal/fleet/... ./internal/vmm/... ./internal/snapshot/... \
    ./internal/hostmem/... ./internal/guest/... ./internal/telemetry/...

# Every registered fault site must surface in the operator-facing
# catalog: the count of RegisterSite calls in non-test source must match
# what lupine-bench -list-faults prints, or a new site shipped without
# being discoverable.
echo "== fault-site catalog"
registered=$(grep -rh --include='*.go' --exclude='*_test.go' 'faults\.RegisterSite(' internal/ | wc -l)
listed=$(go run ./cmd/lupine-bench -list-faults | wc -l)
if [ "$registered" -ne "$listed" ]; then
    echo "fault-site catalog mismatch: $registered RegisterSite calls in internal/, $listed listed by -list-faults" >&2
    exit 1
fi
echo "   $listed sites registered and listed"

# Trace determinism gate: two same-seed memstorm runs must export
# byte-identical, valid Chrome trace JSON. This is the telemetry plane's
# core contract — virtual-time spans only, no wall clocks.
echo "== trace determinism (memstorm, two same-seed runs)"
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/lupine-bench -run memstorm -trace-out="$tracedir/a.json" >/dev/null
go run ./cmd/lupine-bench -run memstorm -trace-out="$tracedir/b.json" >/dev/null
cmp "$tracedir/a.json" "$tracedir/b.json"
go run ./scripts/jsoncheck.go "$tracedir/a.json"
echo "   byte-identical and valid JSON"

echo "== ok"
