#!/bin/sh
# Pre-PR gate: formatting, vet, and the full test suite under the race
# detector. Run from the repository root:  ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go test -race"
go test -race ./...

# The concurrency-sensitive planes (fleet event engine, supervisor,
# snapshot store) get a second racing pass with fresh test binaries:
# -count=2 defeats result caching and shakes out run-to-run
# nondeterminism the bit-for-bit replay guarantees forbid.
echo "== go test -race -count=2 (fleet, vmm, snapshot)"
go test -race -count=2 ./internal/fleet/... ./internal/vmm/... ./internal/snapshot/...

echo "== ok"
