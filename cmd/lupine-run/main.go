// Command lupine-run builds and boots a Lupine unikernel under a monitor,
// runs the application to its success criterion, and prints the boot
// timeline and console.
//
// Usage:
//
//	lupine-run -app redis [-kml] [-monitor firecracker|qemu] [-mem 512]
package main

import (
	"flag"
	"fmt"
	"os"

	"lupine/internal/apps"
	"lupine/internal/core"
	"lupine/internal/guest"
	"lupine/internal/kerneldb"
	"lupine/internal/vmm"
)

func main() {
	appName := flag.String("app", "hello-world", "application to run")
	kml := flag.Bool("kml", false, "use the KML variant")
	monitor := flag.String("monitor", "firecracker", "monitor: firecracker, qemu, solo5-hvt, uhyve")
	memMiB := flag.Int64("mem", 512, "guest memory in MiB")
	serve := flag.Bool("serve", false, "run the full server loop with a benchmark client")
	flag.Parse()

	a, err := apps.Lookup(*appName)
	if err != nil {
		fatal(err)
	}
	var mon *vmm.Monitor
	switch *monitor {
	case "firecracker":
		mon = vmm.Firecracker()
	case "qemu":
		mon = vmm.QEMU()
	case "solo5-hvt":
		mon = vmm.Solo5HVT()
	case "uhyve":
		mon = vmm.UHyve()
	default:
		fatal(fmt.Errorf("unknown monitor %q", *monitor))
	}

	db, err := kerneldb.Load()
	if err != nil {
		fatal(err)
	}
	spec := core.Spec{
		Manifest: a.Manifest(),
		Image:    a.ContainerImage(),
		Program:  func(p *guest.Proc, probeOnly bool) int { return a.Main(p, probeOnly) },
	}
	u, err := core.Build(db, spec, core.BuildOpts{KML: *kml})
	if err != nil {
		fatal(err)
	}
	vm, err := u.Boot(core.BootOpts{
		Monitor:   mon,
		Memory:    *memMiB << 20,
		ProbeOnly: !*serve,
	})
	if err != nil {
		fatal(err)
	}
	if *serve && a.Port > 0 {
		var res apps.BenchResult
		if *appName == "redis" || *appName == "memcached" {
			apps.SpawnRedisBenchmark(vm.Guest, a.Port, 1000, "get", &res)
		} else {
			apps.SpawnAB(vm.Guest, a.Port, 10, 100, &res)
		}
		defer func() { fmt.Printf("\nbenchmark: %s\n", res) }()
	}
	if err := vm.Run(); err != nil {
		fatal(err)
	}

	fmt.Printf("boot timeline (%s on %s):\n%s\n", u.Kernel.Name, mon.Name, vm.Boot)
	fmt.Println("console:")
	fmt.Print(vm.Console())
	if vm.Succeeded(a.SuccessText) {
		fmt.Printf("\nsuccess criterion met: %q\n", a.SuccessText)
	} else {
		fmt.Printf("\nsuccess criterion NOT met: %q\n", a.SuccessText)
		os.Exit(1)
	}
	fmt.Printf("guest memory peak: %d MiB\n", vm.Guest.MemPeak()/guest.MiB)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lupine-run:", err)
	os.Exit(1)
}
