// Command lupine-build builds a Lupine unikernel for one of the top-20
// registry applications (Figure 2's pipeline): specialized kernel config,
// optional KML patching, and the ext2 root filesystem.
//
// Usage:
//
//	lupine-build -app redis [-kml] [-tiny] [-o dir]
//	lupine-build -list
package main

import (
	"flag"
	"fmt"
	"os"

	"lupine/internal/apps"
	"lupine/internal/core"
	"lupine/internal/guest"
	"lupine/internal/kerneldb"
)

func main() {
	appName := flag.String("app", "", "application to build (see -list)")
	kml := flag.Bool("kml", false, "apply Kernel Mode Linux (drops CONFIG_PARAVIRT)")
	tiny := flag.Bool("tiny", false, "optimize for space (-Os plus 9 flipped options)")
	general := flag.Bool("general", false, "use the 19-option lupine-general config")
	outDir := flag.String("o", "", "write kernel .config, init script and rootfs.ext2 to this directory")
	list := flag.Bool("list", false, "list buildable applications")
	all := flag.Bool("all", false, "build every registry app through a shared kernel cache (MultiK-style)")
	flag.Parse()

	if *list {
		for _, a := range apps.Registry() {
			fmt.Printf("%-14s %-22s %2d options\n", a.Name, a.Description, len(a.Options))
		}
		return
	}
	if *all {
		buildAll(*kml, *tiny)
		return
	}
	if *appName == "" {
		fmt.Fprintln(os.Stderr, "lupine-build: -app is required (or -list/-all)")
		os.Exit(2)
	}
	a, err := apps.Lookup(*appName)
	if err != nil {
		fatal(err)
	}
	db, err := kerneldb.Load()
	if err != nil {
		fatal(err)
	}
	spec := core.Spec{
		Manifest: a.Manifest(),
		Image:    a.ContainerImage(),
		Program:  func(p *guest.Proc, probeOnly bool) int { return a.Main(p, probeOnly) },
	}
	var u *core.Unikernel
	if *general {
		u, err = core.BuildGeneral(db, spec, *kml)
	} else {
		u, err = core.Build(db, spec, core.BuildOpts{KML: *kml, Tiny: *tiny})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("built %s\n", u.Kernel.Name)
	fmt.Printf("  kernel image:   %.2f MB (%s, %d options)\n",
		u.Kernel.MegabytesMB(), u.Kernel.Opt, u.Kernel.Config.Len())
	fmt.Printf("  rootfs (ext2):  %.2f MB\n", float64(len(u.RootFS))/1e6)
	fmt.Printf("  KML:            %v\n", u.Kernel.KML())
	fmt.Printf("  manifest opts:  %v\n", u.Spec.Manifest.Options)

	if *outDir != "" {
		paths, err := u.WriteArtifacts(*outDir)
		if err != nil {
			fatal(err)
		}
		for _, p := range paths {
			fmt.Printf("  wrote %s\n", p)
		}
	}
}

// buildAll builds the whole registry through a kernel cache, reporting
// how much kernel sharing MultiK-style orchestration achieves.
func buildAll(kml, tiny bool) {
	db, err := kerneldb.Load()
	if err != nil {
		fatal(err)
	}
	cache := core.NewKernelCache(db)
	for _, a := range apps.Registry() {
		a := a
		spec := core.Spec{
			Manifest: a.Manifest(),
			Image:    a.ContainerImage(),
			Program:  func(p *guest.Proc, probeOnly bool) int { return a.Main(p, probeOnly) },
		}
		u, err := cache.Build(spec, core.BuildOpts{KML: kml, Tiny: tiny})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s kernel %-28s %6.2f MB  rootfs %6.2f MB\n",
			a.Name, u.Kernel.Name, u.Kernel.MegabytesMB(), float64(len(u.RootFS))/1e6)
	}
	builds, hits := cache.Stats()
	fmt.Printf("\nkernel cache: %d distinct kernels serve %d applications (%d shared)\n",
		builds, builds+hits, hits)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lupine-build:", err)
	os.Exit(1)
}
