// Command lupine-bench runs the paper-reproduction experiments and prints
// the corresponding tables and figure series.
//
// Usage:
//
//	lupine-bench -list
//	lupine-bench -list-apps
//	lupine-bench -list-faults
//	lupine-bench [-run id[,id...]]   (default: all)
//	lupine-bench -json [-run id[,id...]]
//	lupine-bench -run memstorm -trace-out=trace.json -metrics-out=metrics.json
//	lupine-bench -csv=out/ [-run id[,id...]]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"lupine/internal/apps"
	"lupine/internal/experiments"
	"lupine/internal/faults"
	"lupine/internal/metrics"
	"lupine/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	listApps := flag.Bool("list-apps", false, "list the application catalog the pipeline can build")
	listFaults := flag.Bool("list-faults", false, "list registered fault-injection sites")
	run := flag.String("run", "", "comma-separated experiment ids (default all)")
	csvDir := flag.String("csv", "", "write each table as <dir>/<id>.csv (for plotting)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array (machine-readable)")
	seed := flag.Uint64("seed", 42, "fault-storm seed for the chaos experiment")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the runs (load in Perfetto or chrome://tracing)")
	metricsOut := flag.String("metrics-out", "", "write the telemetry metrics registry as JSON (plus an OpenMetrics sibling at <path>.prom)")
	sloOut := flag.String("slo-out", "", "write the per-experiment SLO reports (objectives, burns, alerts, incidents) as JSON")
	flight := flag.Bool("flight", false, "print flight-recorder crash dumps after the runs")
	benchOut := flag.String("bench-out", "", "run the -bench storm and append a wall-clock bench record to this JSON file")
	bench := flag.String("bench", "netsplit", "which storm -bench-out samples: netsplit, regionfail, catalog, or breach")
	flag.Parse()

	experiments.SetChaosSeed(*seed)

	// The telemetry plane is off (nil) unless an output asks for it, so
	// plain runs keep the zero-cost disabled path.
	var tracer *telemetry.Tracer
	var registry *telemetry.Registry
	if *traceOut != "" || *flight {
		tracer = telemetry.New()
		tracer.SetFlight(telemetry.NewRecorder(0))
	}
	if *metricsOut != "" {
		registry = telemetry.NewRegistry()
	}
	experiments.SetTelemetry(tracer, registry)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	if *listApps {
		// The same registry the bunny pipeline and the catalog experiment
		// build from: Table 2's top-20 images, ordered by pulls.
		fmt.Printf("%-12s %10s %6s %8s\n", "app", "downloads", "port", "options")
		for _, a := range apps.Registry() {
			port := "-"
			if a.Port != 0 {
				port = fmt.Sprintf("%d", a.Port)
			}
			fmt.Printf("%-12s %9.1fB %6s %8d\n", a.Name, a.DownloadsBillions, port, len(a.Options))
		}
		return
	}

	if *listFaults {
		// Importing the experiments package pulls in every subsystem, so
		// the registry holds all sites a plan can arm. Sites print grouped
		// by subsystem; scripts/check.sh counts the indented site lines
		// against RegisterSite calls, so every site stays discoverable.
		subsystem := ""
		for _, s := range faults.Sites() {
			if s.Subsystem != subsystem {
				if subsystem != "" {
					fmt.Println()
				}
				subsystem = s.Subsystem
				fmt.Printf("%s:\n", subsystem)
			}
			fmt.Printf("  %-26s %s\n", s.Name, s.Doc)
		}
		return
	}

	if *benchOut != "" {
		if err := writeBenchRecord(*benchOut, *bench, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.All()
	} else {
		// Stray commas ("chaos,", ",,surge") are noise, not ids — skip
		// them; an all-noise selector is an error, with the same valid-id
		// listing Lookup gives for a typo.
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			e, err := experiments.Lookup(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
		if len(selected) == 0 {
			var ids []string
			for _, e := range experiments.All() {
				ids = append(ids, e.ID)
			}
			fmt.Fprintf(os.Stderr, "-run selects no experiments (try: %v)\n", ids)
			os.Exit(2)
		}
	}

	failed := 0
	var records []jsonRecord
	for _, e := range selected {
		start := time.Now()
		out, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: FAILED: %v\n", e.ID, err)
			failed++
			continue
		}
		if *jsonOut {
			records = append(records, newJSONRecord(e, out))
			continue
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.ID, out); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing CSV: %v\n", e.ID, err)
				failed++
			}
			continue
		}
		fmt.Printf("# %s — %s (wall %.1fs)\n\n%s\n", e.ID, e.Title,
			time.Since(start).Seconds(), out)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		b := tracer.ChromeTrace()
		if !json.Valid(b) {
			fmt.Fprintln(os.Stderr, "trace-out: export is not valid JSON")
			os.Exit(1)
		}
		if err := os.WriteFile(*traceOut, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, registry.JSON(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// The OpenMetrics sibling: the same registry in text exposition
		// format, for anything that scrapes rather than parses JSON.
		if err := os.WriteFile(*metricsOut+".prom", registry.OpenMetrics(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *sloOut != "" {
		if err := writeSLOReports(*sloOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *flight {
		for _, d := range tracer.Flight().Dumps() {
			fmt.Print(d)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// benchRecord is one wall-clock trajectory sample scripts/check.sh
// lands in BENCH_<storm>.json: how fast the event engine chews through
// the storm on this machine, plus the headline results so a perf
// regression that changes behavior is visible in the same file. The
// file holds a JSON array and every run appends, so the trajectory
// accumulates instead of each run clobbering the last.
type benchRecord struct {
	Experiment      string  `json:"experiment"`
	When            string  `json:"when"`
	Seed            uint64  `json:"seed"`
	Events          int     `json:"events"`
	WallSeconds     float64 `json:"wall_seconds"`
	EventsPerSec    float64 `json:"events_per_sec"`
	Availability    float64 `json:"availability"`            // headline lupine+mp row
	P99Micros       float64 `json:"p99_us,omitempty"`        // netsplit: served p99 virtual latency
	DetectP99Micros float64 `json:"detect_p99_us,omitempty"` // regionfail: failover detection p99
	HitRate         float64 `json:"hit_rate,omitempty"`      // catalog: redeploy artifact-cache hit rate
	Containment     float64 `json:"containment,omitempty"`   // breach: hardened-row contained/compromised

	// Engine self-observability (ROADMAP item 2's baseline): how much
	// the event engine allocates per virtual event, sampled around the
	// storm with runtime.ReadMemStats.
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"`
	BytesPerEvent  float64 `json:"bytes_per_event,omitempty"`
}

// readBenchRecords loads the existing trajectory. A missing file is an
// empty trajectory; a legacy single-object file becomes its first entry.
func readBenchRecords(path string) ([]benchRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var recs []benchRecord
	if err := json.Unmarshal(b, &recs); err == nil {
		return recs, nil
	}
	var one benchRecord
	if err := json.Unmarshal(b, &one); err != nil {
		return nil, fmt.Errorf("bench-out: %s holds neither a record array nor a legacy record: %w", path, err)
	}
	return []benchRecord{one}, nil
}

func writeBenchRecord(path, bench string, seed uint64) error {
	recs, err := readBenchRecords(path)
	if err != nil {
		return err
	}
	rec := benchRecord{
		Experiment: bench,
		When:       time.Now().UTC().Format(time.RFC3339),
		Seed:       seed,
	}
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	switch bench {
	case "netsplit":
		rec.Events, rec.Availability, rec.P99Micros, err = experiments.NetSplitBench()
	case "regionfail":
		rec.Events, rec.Availability, rec.DetectP99Micros, err = experiments.RegionFailBench()
	case "catalog":
		rec.Events, rec.Availability, rec.HitRate, err = experiments.CatalogBench()
	case "breach":
		rec.Events, rec.Availability, rec.Containment, err = experiments.BreachBench()
	default:
		return fmt.Errorf("bench-out: unknown storm %q (valid: netsplit, regionfail, catalog, breach)", bench)
	}
	if err != nil {
		return fmt.Errorf("bench-out: %w", err)
	}
	rec.WallSeconds = time.Since(start).Seconds()
	rec.EventsPerSec = float64(rec.Events) / rec.WallSeconds
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if rec.Events > 0 {
		rec.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(rec.Events)
		rec.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(rec.Events)
	}
	recs = append(recs, rec)
	b, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// writeSLOReports lands every run experiment's SLO report — sorted by
// experiment id, indented, newline-terminated — so two same-seed runs
// write byte-identical files (check.sh gates on cmp).
func writeSLOReports(path string) error {
	reps := experiments.SLOReports()
	if len(reps) == 0 {
		return fmt.Errorf("slo-out: no experiments ran, nothing to report")
	}
	b, err := json.MarshalIndent(reps, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// writeCSV lands one experiment's table (or figure) as <dir>/<id>.csv.
func writeCSV(dir, id string, out fmt.Stringer) error {
	var csv string
	switch v := out.(type) {
	case *metrics.Table:
		csv = v.CSV()
	case *metrics.Figure:
		csv = v.CSV()
	default:
		return fmt.Errorf("result has no tabular form")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".csv"), []byte(csv), 0o644)
}

// jsonRecord is one experiment's machine-readable result: tables and
// figures marshal structurally, anything else degrades to its rendering.
type jsonRecord struct {
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Table  *metrics.Table  `json:"table,omitempty"`
	Figure *metrics.Figure `json:"figure,omitempty"`
	Text   string          `json:"text,omitempty"`
}

func newJSONRecord(e experiments.Experiment, out fmt.Stringer) jsonRecord {
	rec := jsonRecord{ID: e.ID, Title: e.Title}
	switch v := out.(type) {
	case *metrics.Table:
		rec.Table = v
	case *metrics.Figure:
		rec.Figure = v
	default:
		rec.Text = out.String()
	}
	return rec
}
