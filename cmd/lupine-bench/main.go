// Command lupine-bench runs the paper-reproduction experiments and prints
// the corresponding tables and figure series.
//
// Usage:
//
//	lupine-bench -list
//	lupine-bench -list-faults
//	lupine-bench [-run id[,id...]]   (default: all)
//	lupine-bench -json [-run id[,id...]]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lupine/internal/experiments"
	"lupine/internal/faults"
	"lupine/internal/metrics"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	listFaults := flag.Bool("list-faults", false, "list registered fault-injection sites")
	run := flag.String("run", "", "comma-separated experiment ids (default all)")
	csv := flag.Bool("csv", false, "emit tables as CSV (for plotting)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array (machine-readable)")
	seed := flag.Uint64("seed", 42, "fault-storm seed for the chaos experiment")
	flag.Parse()

	experiments.SetChaosSeed(*seed)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	if *listFaults {
		// Importing the experiments package pulls in every subsystem, so
		// the registry holds all sites a plan can arm.
		for _, s := range faults.Sites() {
			fmt.Printf("%-24s %-8s %s\n", s.Name, s.Subsystem, s.Doc)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	var records []jsonRecord
	for _, e := range selected {
		start := time.Now()
		out, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: FAILED: %v\n", e.ID, err)
			failed++
			continue
		}
		if *jsonOut {
			records = append(records, newJSONRecord(e, out))
			continue
		}
		if tbl, ok := out.(*metrics.Table); ok && *csv {
			fmt.Printf("# %s\n%s\n", e.ID, tbl.CSV())
			continue
		}
		fmt.Printf("# %s — %s (wall %.1fs)\n\n%s\n", e.ID, e.Title,
			time.Since(start).Seconds(), out)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// jsonRecord is one experiment's machine-readable result: tables and
// figures marshal structurally, anything else degrades to its rendering.
type jsonRecord struct {
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Table  *metrics.Table  `json:"table,omitempty"`
	Figure *metrics.Figure `json:"figure,omitempty"`
	Text   string          `json:"text,omitempty"`
}

func newJSONRecord(e experiments.Experiment, out fmt.Stringer) jsonRecord {
	rec := jsonRecord{ID: e.ID, Title: e.Title}
	switch v := out.(type) {
	case *metrics.Table:
		rec.Table = v
	case *metrics.Figure:
		rec.Figure = v
	default:
		rec.Text = out.String()
	}
	return rec
}
