// Command manifestgen derives an application manifest automatically by
// the §4.1 process: boot the app on lupine-base, read the console error,
// map it to a kernel option, add it, repeat until the success criterion
// appears. What took the authors 1-3 hours per application takes the
// simulator a few boots.
//
// Usage:
//
//	manifestgen -app redis [-o redis.json]
//	manifestgen -all
package main

import (
	"flag"
	"fmt"
	"os"

	"lupine/internal/apps"
	"lupine/internal/core"
	"lupine/internal/guest"
	"lupine/internal/kerneldb"
)

func main() {
	appName := flag.String("app", "", "application to derive a manifest for")
	all := flag.Bool("all", false, "derive manifests for all 20 registry apps (Table 3)")
	trace := flag.Bool("trace", false, "use dynamic syscall tracing (2 boots) instead of the error-message search")
	out := flag.String("o", "", "write the manifest JSON to this file")
	flag.Parse()

	db, err := kerneldb.Load()
	if err != nil {
		fatal(err)
	}
	if *all {
		fmt.Printf("%-14s %-8s %s\n", "app", "#options", "options (discovery order)")
		for _, name := range apps.Names() {
			res, err := derive(db, name, *trace)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-14s %-8d %v\n", name, len(res.Manifest.Options), res.Added)
		}
		return
	}
	if *appName == "" {
		fmt.Fprintln(os.Stderr, "manifestgen: -app or -all required")
		os.Exit(2)
	}
	res, err := derive(db, *appName, *trace)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("derived manifest for %s in %d boots\n", *appName, res.Boots)
	fmt.Printf("options (discovery order): %v\n", res.Added)
	data, err := res.Manifest.Marshal()
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		fmt.Println(string(data))
	}
}

func derive(db *kerneldb.DB, name string, trace bool) (*core.SearchResult, error) {
	a, err := apps.Lookup(name)
	if err != nil {
		return nil, err
	}
	fn := core.DeriveManifest
	if trace {
		fn = core.DeriveManifestByTrace
	}
	return fn(db, core.SearchInput{
		Spec: core.Spec{
			Manifest: a.Manifest(),
			Image:    a.ContainerImage(),
			Program:  func(p *guest.Proc, probeOnly bool) int { return a.Main(p, probeOnly) },
		},
		SuccessText: a.SuccessText,
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "manifestgen:", err)
	os.Exit(1)
}
