// Command kconfigtool inspects the synthetic Linux 4.0 option tree and
// resolves/diffs kernel configurations.
//
// Usage:
//
//	kconfigtool census                 # Figure 3 per-directory counts
//	kconfigtool classes                # Figure 4 class breakdown
//	kconfigtool show OPTION            # one option's declaration + costs
//	kconfigtool resolve base|microvm|general [EXTRA...]  # print .config
//	kconfigtool diff A B               # diff two named profiles
package main

import (
	"fmt"
	"os"
	"strings"

	"lupine/internal/kconfig"
	"lupine/internal/kerneldb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	db, err := kerneldb.Load()
	if err != nil {
		fatal(err)
	}
	switch os.Args[1] {
	case "census":
		var total, micro, base int
		fmt.Printf("%-10s %7s %8s %12s\n", "directory", "total", "microvm", "lupine-base")
		for _, c := range db.Figure3Census() {
			fmt.Printf("%-10s %7d %8d %12d\n", c.Dir, c.Total, c.MicroVM, c.Base)
			total += c.Total
			micro += c.MicroVM
			base += c.Base
		}
		fmt.Printf("%-10s %7d %8d %12d\n", "TOTAL", total, micro, base)
	case "classes":
		for _, c := range db.Figure4Census() {
			fmt.Printf("%-22s %5d\n", c.Class, c.Count)
		}
	case "show":
		if len(os.Args) < 3 {
			usage()
		}
		name := strings.TrimPrefix(os.Args[2], "CONFIG_")
		o := db.Kconfig.Lookup(name)
		if o == nil {
			fatal(fmt.Errorf("unknown option %s", name))
		}
		info := db.Info(name)
		fmt.Printf("config %s\n", o.Name)
		fmt.Printf("  type:     %s\n", o.Type)
		fmt.Printf("  prompt:   %q\n", o.Prompt)
		fmt.Printf("  dir:      %s\n", o.Dir)
		fmt.Printf("  class:    %s\n", info.Class)
		fmt.Printf("  size:     %d bytes\n", info.Size)
		fmt.Printf("  boot:     %v\n", info.Boot)
		if o.Depends != nil {
			fmt.Printf("  depends:  %s\n", o.Depends)
		}
		if len(info.Syscalls) > 0 {
			fmt.Printf("  syscalls: %s\n", strings.Join(info.Syscalls, ", "))
		}
		if o.Help != "" {
			fmt.Printf("  help:     %s\n", o.Help)
		}
	case "resolve":
		if len(os.Args) < 3 {
			usage()
		}
		cfg, err := resolveProfile(db, os.Args[2], os.Args[3:])
		if err != nil {
			fatal(err)
		}
		fmt.Print(cfg)
		fmt.Fprintf(os.Stderr, "# %d options set\n", cfg.Len())
	case "minimize":
		if len(os.Args) < 3 {
			usage()
		}
		cfg, err := resolveProfile(db, os.Args[2], os.Args[3:])
		if err != nil {
			fatal(err)
		}
		min, err := kconfig.Minimize(db.Kconfig, cfg)
		if err != nil {
			fatal(err)
		}
		for _, n := range min.Names() {
			fmt.Printf("CONFIG_%s=y\n", n)
		}
		fmt.Fprintf(os.Stderr, "# defconfig: %d of %d symbols\n", len(min.Names()), cfg.Len())
	case "diff":
		if len(os.Args) < 4 {
			usage()
		}
		a, err := resolveProfile(db, os.Args[2], nil)
		if err != nil {
			fatal(err)
		}
		b, err := resolveProfile(db, os.Args[3], nil)
		if err != nil {
			fatal(err)
		}
		d := b.DiffFrom(a)
		for _, n := range d.Added {
			fmt.Printf("+CONFIG_%s\n", n)
		}
		for _, n := range d.Removed {
			fmt.Printf("-CONFIG_%s\n", n)
		}
		for _, n := range d.Changed {
			fmt.Printf("~CONFIG_%s\n", n)
		}
		fmt.Fprintf(os.Stderr, "# +%d -%d ~%d\n", len(d.Added), len(d.Removed), len(d.Changed))
	default:
		usage()
	}
}

func resolveProfile(db *kerneldb.DB, name string, extra []string) (*kconfig.Config, error) {
	var req *kconfig.Request
	switch name {
	case "base", "lupine-base":
		req = db.LupineBaseRequest()
	case "microvm":
		req = db.MicroVMRequest()
	case "general", "lupine-general":
		req = db.LupineBaseRequest().Enable(kerneldb.GeneralOptions()...)
	default:
		return nil, fmt.Errorf("unknown profile %q (want base, microvm or general)", name)
	}
	for _, e := range extra {
		req.Enable(strings.TrimPrefix(e, "CONFIG_"))
	}
	return db.ResolveProfile(req)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: kconfigtool census|classes|show OPT|resolve PROFILE [OPT...]|minimize PROFILE|diff A B")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kconfigtool:", err)
	os.Exit(1)
}
