// Specialize example: the configuration-engineering workflow end to end
// for one application (postgres) — derive the minimal option set two
// independent ways (error-message search vs dynamic syscall tracing),
// minimize the resulting configuration to a committable defconfig, and
// compare the specialized kernel to lupine-general and microVM.
package main

import (
	"fmt"
	"log"

	"lupine/internal/apps"
	"lupine/internal/core"
	"lupine/internal/guest"
	"lupine/internal/kconfig"
	"lupine/internal/kerneldb"
)

func main() {
	db, err := kerneldb.Load()
	if err != nil {
		log.Fatal(err)
	}
	app, err := apps.Lookup("postgres")
	if err != nil {
		log.Fatal(err)
	}
	spec := core.Spec{
		Manifest: app.Manifest(),
		Image:    app.ContainerImage(),
		Program:  func(p *guest.Proc, probeOnly bool) int { return app.Main(p, probeOnly) },
	}
	in := core.SearchInput{Spec: spec, SuccessText: app.SuccessText}

	// 1. Derive the option set by the paper's §4.1 error-message search.
	bySearch, err := core.DeriveManifest(db, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("error-message search: %d options in %d boots\n",
		len(bySearch.Manifest.Options), bySearch.Boots)
	fmt.Printf("  discovery order: %v\n", bySearch.Added)

	// 2. Same set by dynamic tracing (2 boots).
	byTrace, err := core.DeriveManifestByTrace(db, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("syscall tracing:      %d options in %d boots\n",
		len(byTrace.Manifest.Options), byTrace.Boots)
	agree := fmt.Sprint(bySearch.Manifest.Options) == fmt.Sprint(byTrace.Manifest.Options)
	fmt.Printf("  methods agree: %v\n\n", agree)

	// 3. Build the specialized kernel and minimize its configuration to a
	//    defconfig a developer would commit.
	u, err := core.Build(db, spec, core.BuildOpts{})
	if err != nil {
		log.Fatal(err)
	}
	defconfig, err := kconfig.Minimize(db.Kconfig, u.Kernel.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specialized kernel: %d resolved options, %d-line defconfig, %.2f MB\n",
		u.Kernel.Config.Len(), len(defconfig.Names()), u.Kernel.MegabytesMB())

	// 4. Compare against the one-size-fits-twenty and the baseline.
	general, err := core.BuildGeneral(db, spec, false)
	if err != nil {
		log.Fatal(err)
	}
	micro, err := core.BuildMicroVM(db, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lupine-general:     %d resolved options, %.2f MB\n",
		general.Kernel.Config.Len(), general.Kernel.MegabytesMB())
	fmt.Printf("microVM baseline:   %d resolved options, %.2f MB\n",
		micro.Kernel.Config.Len(), micro.Kernel.MegabytesMB())

	// 5. The multi-process warning the paper highlights: postgres needs
	//    SYSVIPC, which strict unikernels cannot provide.
	for _, o := range bySearch.Manifest.Options {
		if db.Class(o) == kerneldb.ClassMultiProc {
			fmt.Printf("\nnote: %s is a multi-process option — postgres is not a "+
				"unikernel-shaped app, and Lupine runs it anyway (§4.1)\n", o)
		}
	}
}
