// Redis example: the paper's flagship workload. Builds redis unikernels
// for every Lupine variant plus the microVM baseline, drives each with a
// redis-benchmark client, and compares against the unikernel comparators
// — a miniature Table 4 for one application.
package main

import (
	"fmt"
	"log"

	"lupine/internal/apps"
	"lupine/internal/core"
	"lupine/internal/guest"
	"lupine/internal/kerneldb"
	"lupine/internal/libos"
	"lupine/internal/metrics"
)

const requests = 2000

func main() {
	db, err := kerneldb.Load()
	if err != nil {
		log.Fatal(err)
	}
	app, err := apps.Lookup("redis")
	if err != nil {
		log.Fatal(err)
	}
	spec := core.Spec{
		Manifest: app.Manifest(),
		Image:    app.ContainerImage(),
		Program:  func(p *guest.Proc, probeOnly bool) int { return app.Main(p, probeOnly) },
	}

	run := func(u *core.Unikernel, op string) float64 {
		vm, err := u.Boot(core.BootOpts{})
		if err != nil {
			log.Fatal(err)
		}
		var res apps.BenchResult
		apps.SpawnRedisBenchmark(vm.Guest, app.Port, requests, op, &res)
		if err := vm.Run(); err != nil {
			log.Fatal(err)
		}
		return res.Throughput
	}

	type variant struct {
		label string
		build func() (*core.Unikernel, error)
	}
	variants := []variant{
		{"microVM", func() (*core.Unikernel, error) { return core.BuildMicroVM(db, spec) }},
		{"lupine (KML)", func() (*core.Unikernel, error) { return core.Build(db, spec, core.BuildOpts{KML: true}) }},
		{"lupine-nokml", func() (*core.Unikernel, error) { return core.Build(db, spec, core.BuildOpts{}) }},
		{"lupine-tiny", func() (*core.Unikernel, error) {
			return core.Build(db, spec, core.BuildOpts{KML: true, Tiny: true})
		}},
		{"lupine-general", func() (*core.Unikernel, error) { return core.BuildGeneral(db, spec, true) }},
	}

	t := &metrics.Table{
		Title:   "redis throughput (requests per virtual second)",
		Columns: []string{"system", "image MB", "GET req/s", "SET req/s", "GET vs microVM"},
	}
	var baseGet float64
	for _, v := range variants {
		u, err := v.build()
		if err != nil {
			log.Fatal(err)
		}
		get := run(u, "get")
		set := run(u, "set")
		if v.label == "microVM" {
			baseGet = get
		}
		t.AddRow(v.label, u.Kernel.MegabytesMB(), get, set, fmt.Sprintf("%.2fx", get/baseGet))
	}
	for _, s := range libos.All() {
		get, errG := s.Benchmark("redis-get", requests)
		set, errS := s.Benchmark("redis-set", requests)
		if errG != nil || errS != nil {
			t.AddRow(s.Name, "-", "cannot run", "cannot run", "-")
			continue
		}
		sz, _ := s.ImageSize("redis")
		t.AddRow(s.Name, float64(sz)/1e6, get, set, fmt.Sprintf("%.2fx", get/baseGet))
	}
	fmt.Print(t.Render())
	fmt.Println("\npaper's Table 4: lupine beats microVM by ~21-22% on redis; " +
		"hermitux reaches .66-.67, OSv .87/.53, rump .99")
}
