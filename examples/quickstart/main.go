// Quickstart: build a Lupine unikernel for a hello-world container and
// boot it under Firecracker — the minimal end-to-end path through the
// public pipeline (specialize → build → rootfs → boot → run).
package main

import (
	"fmt"
	"log"

	"lupine/internal/apps"
	"lupine/internal/core"
	"lupine/internal/guest"
	"lupine/internal/kerneldb"
)

func main() {
	// 1. The option database: a synthetic Linux 4.0 tree (15,953 options).
	db, err := kerneldb.Load()
	if err != nil {
		log.Fatal(err)
	}

	// 2. The application: hello-world from the top-20 registry. Its
	//    manifest needs zero options beyond lupine-base.
	app, err := apps.Lookup("hello-world")
	if err != nil {
		log.Fatal(err)
	}
	spec := core.Spec{
		Manifest: app.Manifest(),
		Image:    app.ContainerImage(),
		Program:  func(p *guest.Proc, probeOnly bool) int { return app.Main(p, probeOnly) },
	}

	// 3. Build the unikernel: lupine-base config + KML + ext2 rootfs.
	u, err := core.Build(db, spec, core.BuildOpts{KML: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s: %.2f MB, %d config options, KML=%v\n",
		u.Kernel.Name, u.Kernel.MegabytesMB(), u.Kernel.Config.Len(), u.Kernel.KML())
	fmt.Printf("rootfs: %.2f MB ext2 image\n\n", float64(len(u.RootFS))/1e6)

	// 4. Boot under Firecracker and run to completion.
	vm, err := u.Boot(core.BootOpts{})
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("boot timeline:")
	fmt.Println(vm.Boot)
	fmt.Println("console:")
	fmt.Print(vm.Console())
	fmt.Printf("\nsuccess: %v (peak guest memory %d MiB)\n",
		vm.Succeeded(app.SuccessText), vm.Guest.MemPeak()/guest.MiB)
}
