// Nginx example: the paper's web-serving workload under both ab
// scenarios — connection-per-request (nginx-conn) and keep-alive
// sessions of 100 requests (nginx-sess) — comparing Lupine variants to
// the microVM baseline, plus the automatic manifest derivation for nginx.
package main

import (
	"fmt"
	"log"

	"lupine/internal/apps"
	"lupine/internal/core"
	"lupine/internal/guest"
	"lupine/internal/kerneldb"
	"lupine/internal/metrics"
)

func main() {
	db, err := kerneldb.Load()
	if err != nil {
		log.Fatal(err)
	}
	app, err := apps.Lookup("nginx")
	if err != nil {
		log.Fatal(err)
	}
	spec := core.Spec{
		Manifest: app.Manifest(),
		Image:    app.ContainerImage(),
		Program:  func(p *guest.Proc, probeOnly bool) int { return app.Main(p, probeOnly) },
	}

	// First: show the §4.1 configuration search deriving nginx's 13
	// options from console error messages alone.
	search, err := core.DeriveManifest(db, core.SearchInput{
		Spec:        spec,
		SuccessText: app.SuccessText,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("config search: derived %d options in %d boots\n",
		len(search.Manifest.Options), search.Boots)
	fmt.Printf("discovery order: %v\n\n", search.Added)

	run := func(u *core.Unikernel, conns, reqs int) float64 {
		vm, err := u.Boot(core.BootOpts{})
		if err != nil {
			log.Fatal(err)
		}
		var res apps.BenchResult
		apps.SpawnAB(vm.Guest, app.Port, conns, reqs, &res)
		if err := vm.Run(); err != nil {
			log.Fatal(err)
		}
		return res.Throughput
	}

	t := &metrics.Table{
		Title:   "nginx throughput (req per virtual second)",
		Columns: []string{"system", "conn (300x1)", "sess (30x100)", "conn vs microVM", "sess vs microVM"},
	}
	type variant struct {
		label string
		build func() (*core.Unikernel, error)
	}
	variants := []variant{
		{"microVM", func() (*core.Unikernel, error) { return core.BuildMicroVM(db, spec) }},
		{"lupine (KML)", func() (*core.Unikernel, error) { return core.Build(db, spec, core.BuildOpts{KML: true}) }},
		{"lupine-nokml", func() (*core.Unikernel, error) { return core.Build(db, spec, core.BuildOpts{}) }},
		{"lupine-general", func() (*core.Unikernel, error) { return core.BuildGeneral(db, spec, true) }},
	}
	var baseConn, baseSess float64
	for _, v := range variants {
		u, err := v.build()
		if err != nil {
			log.Fatal(err)
		}
		conn := run(u, 300, 1)
		sess := run(u, 30, 100)
		if v.label == "microVM" {
			baseConn, baseSess = conn, sess
		}
		t.AddRow(v.label, conn, sess,
			fmt.Sprintf("%.2fx", conn/baseConn), fmt.Sprintf("%.2fx", sess/baseSess))
	}
	fmt.Print(t.Render())
	fmt.Println("\npaper's Table 4: lupine reaches 1.33x on nginx-conn and 1.14x on nginx-sess;" +
		" HermiTux cannot run nginx at all")
}
