// Degradation example (§5): unikernels crash when an application steps
// outside the single-process box; Lupine degrades gracefully. The demo
// runs a shell-like control-process pattern (fork + exec + wait) on a
// Lupine kernel, shows every comparator failing the same program, and
// quantifies what re-enabling SMP costs.
package main

import (
	"fmt"
	"log"

	"lupine/internal/apps"
	"lupine/internal/core"
	"lupine/internal/guest"
	"lupine/internal/kbuild"
	"lupine/internal/kerneldb"
	"lupine/internal/libos"
	"lupine/internal/perfbench"
)

func main() {
	db, err := kerneldb.Load()
	if err != nil {
		log.Fatal(err)
	}
	app, err := apps.Lookup("redis")
	if err != nil {
		log.Fatal(err)
	}

	// A launcher script: set up the environment, fork the server, keep a
	// control process around — "extremely common in practice" (§5), and
	// fatal on every real unikernel.
	spec := core.Spec{
		Manifest: app.Manifest(),
		Image:    app.ContainerImage(),
		Program: func(p *guest.Proc, probeOnly bool) int {
			p.Setenv("REDIS_MAXMEMORY", "64mb")
			_, e := p.Fork(func(c *guest.Proc) int {
				if e := c.Execve(app.Entrypoint[0]); e != guest.OK {
					c.Printf("launcher: exec %s: %v\n", app.Entrypoint[0], e)
					return 1
				}
				return app.Main(c, true)
			})
			if e != guest.OK {
				p.Println("launcher: fork failed")
				return 1
			}
			pid, status, _ := p.Wait()
			p.Printf("launcher: server pid %d exited %d; control process still alive\n", pid, status)
			return 0
		},
	}
	u, err := core.Build(db, spec, core.BuildOpts{})
	if err != nil {
		log.Fatal(err)
	}
	vm, err := u.Boot(core.BootOpts{})
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- Lupine: fork/exec launcher ---")
	fmt.Print(vm.Console())
	fmt.Printf("graceful: %v\n\n", vm.Succeeded("control process still alive"))

	fmt.Println("--- the same program on the comparators ---")
	for _, s := range libos.All() {
		fmt.Printf("%-10s %v\n", s.Name, s.Fork())
	}

	// Re-enabling SMP: the worst case is a futex-heavy workload on one
	// CPU; the upside is real parallelism.
	fmt.Println("\n--- cost of re-enabling CONFIG_SMP (§5) ---")
	up, err := buildBench(db, false)
	if err != nil {
		log.Fatal(err)
	}
	smp, err := buildBench(db, true)
	if err != nil {
		log.Fatal(err)
	}
	upT, err := perfbench.FutexStress(up, 64, 20)
	if err != nil {
		log.Fatal(err)
	}
	smpT, err := perfbench.FutexStress(smp, 64, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("futex stress: no-SMP %.2f ms, SMP %.2f ms (overhead %.1f%%)\n",
		upT.Milliseconds(), smpT.Milliseconds(), (float64(smpT)/float64(upT)-1)*100)
	one, _ := perfbench.MakeJ(smp, 128, 1)
	two, _ := perfbench.MakeJ(smp, 128, 2)
	fmt.Printf("make -j 128 jobs: 1 cpu %.1f ms, 2 cpus %.1f ms (%.2fx speedup)\n",
		one.Milliseconds(), two.Milliseconds(), float64(one)/float64(two))
}

func buildBench(db *kerneldb.DB, smp bool) (*kbuild.Image, error) {
	req := db.LupineBaseRequest().Enable("FUTEX", "UNIX")
	name := "lupine-up"
	if smp {
		req.Enable("SMP")
		name = "lupine-smp"
	}
	cfg, err := db.ResolveProfile(req)
	if err != nil {
		return nil, err
	}
	return kbuild.Build(db, name, cfg, kbuild.O2)
}
