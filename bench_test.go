package lupine_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (each regenerates the artifact end-to-end through
// the real pipeline), plus micro-benchmarks of the simulation substrate
// itself. Run with:
//
//	go test -bench=. -benchmem
//
// Key simulated results are attached via b.ReportMetric (units carry a
// "sim-" prefix to distinguish virtual-time results from the wall-clock
// ns/op of the harness itself).

import (
	"testing"

	"lupine/internal/apps"
	"lupine/internal/boot"
	"lupine/internal/core"
	"lupine/internal/experiments"
	"lupine/internal/ext2"
	"lupine/internal/guest"
	"lupine/internal/kbuild"
	"lupine/internal/kconfig"
	"lupine/internal/kerneldb"
	"lupine/internal/lmbench"
	"lupine/internal/perfbench"
	"lupine/internal/vmm"
)

// runExperiment regenerates one table/figure per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		out, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if out.String() == "" {
			b.Fatal("empty output")
		}
	}
}

// --- one benchmark per paper artifact ---

func BenchmarkFig3ConfigOptions(b *testing.B)     { runExperiment(b, "fig3") }
func BenchmarkFig4Breakdown(b *testing.B)         { runExperiment(b, "fig4") }
func BenchmarkTable1SyscallOptions(b *testing.B)  { runExperiment(b, "tab1") }
func BenchmarkTable3TopApps(b *testing.B)         { runExperiment(b, "tab3") }
func BenchmarkFig5OptionGrowth(b *testing.B)      { runExperiment(b, "fig5") }
func BenchmarkFig6ImageSize(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkFig7BootTime(b *testing.B)          { runExperiment(b, "fig7") }
func BenchmarkFig8MemFootprint(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkFig9SyscallLatency(b *testing.B)    { runExperiment(b, "fig9") }
func BenchmarkFig10KMLAmortization(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11ControlProcesses(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12ContextSwitch(b *testing.B)    { runExperiment(b, "fig12") }
func BenchmarkTable4AppPerformance(b *testing.B)  { runExperiment(b, "tab4") }
func BenchmarkTable5LMBench(b *testing.B)         { runExperiment(b, "tab5") }
func BenchmarkSMPOverhead(b *testing.B)           { runExperiment(b, "sec5smp") }
func BenchmarkSecuritySurface(b *testing.B)       { runExperiment(b, "sec-surface") }
func BenchmarkForkDegradation(b *testing.B)       { runExperiment(b, "sec5fork") }
func BenchmarkFleetSharing(b *testing.B)          { runExperiment(b, "fleet") }
func BenchmarkSurgeScaleOut(b *testing.B)         { runExperiment(b, "surge") }
func BenchmarkBootPhaseBreakdown(b *testing.B)    { runExperiment(b, "fig7-detail") }
func BenchmarkKPTIAblation(b *testing.B)          { runExperiment(b, "abl-kpti") }
func BenchmarkParavirtAblation(b *testing.B)      { runExperiment(b, "abl-paravirt") }
func BenchmarkTinyAblation(b *testing.B)          { runExperiment(b, "abl-tiny") }

// --- headline simulated metrics, reported explicitly ---

func buildProfile(b *testing.B, kml bool, extra ...string) *kbuild.Image {
	b.Helper()
	db := kerneldb.MustLoad()
	req := db.LupineBaseRequest().Enable(extra...)
	name := "lupine-nokml"
	if kml {
		req.Set("PARAVIRT", kconfig.TriValue(kconfig.No)).Enable("KERNEL_MODE_LINUX")
		name = "lupine"
	}
	cfg, err := db.ResolveProfile(req)
	if err != nil {
		b.Fatal(err)
	}
	img, err := kbuild.Build(db, name, cfg, kbuild.O2)
	if err != nil {
		b.Fatal(err)
	}
	return img
}

// BenchmarkHeadlineNumbers reports the paper's headline simulated values:
// image size, boot time, memory footprint and null-syscall latency.
func BenchmarkHeadlineNumbers(b *testing.B) {
	db := kerneldb.MustLoad()
	spec, app, err := helloSpec()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		u, err := core.Build(db, spec, core.BuildOpts{})
		if err != nil {
			b.Fatal(err)
		}
		r, err := boot.Simulate(u.Kernel, vmm.Firecracker(), int64(len(u.RootFS)))
		if err != nil {
			b.Fatal(err)
		}
		fp, err := u.MemoryFootprint(core.BootOpts{}, app.SuccessText)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(u.Kernel.MegabytesMB(), "sim-imageMB")
			b.ReportMetric(r.Total.Milliseconds(), "sim-bootms")
			b.ReportMetric(float64(fp)/float64(guest.MiB), "sim-footprintMiB")
		}
	}
}

func helloSpec() (core.Spec, *apps.App, error) {
	a, err := apps.Lookup("hello-world")
	if err != nil {
		return core.Spec{}, nil, err
	}
	return core.Spec{
		Manifest: a.Manifest(),
		Image:    a.ContainerImage(),
		Program:  func(p *guest.Proc, probeOnly bool) int { return a.Main(p, probeOnly) },
	}, a, nil
}

// --- substrate micro-benchmarks (real wall-clock performance) ---

func BenchmarkKconfigResolveLupineBase(b *testing.B) {
	db := kerneldb.MustLoad()
	req := db.LupineBaseRequest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kconfig.Resolve(db.Kconfig, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKconfigResolveMicroVM(b *testing.B) {
	db := kerneldb.MustLoad()
	req := db.MicroVMRequest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kconfig.Resolve(db.Kconfig, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelBuild(b *testing.B) {
	db := kerneldb.MustLoad()
	cfg, err := db.ResolveProfile(db.LupineBaseRequest())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kbuild.Build(db, "bench", cfg, kbuild.O2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExt2RoundTrip(b *testing.B) {
	root := ext2.NewDir("",
		ext2.NewDir("bin", ext2.NewFile("app", 0o755, make([]byte, 512*1024))),
		ext2.NewDir("lib", ext2.NewFile("libc.so", 0o755, make([]byte, 600*1024))),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, err := ext2.WriteImage(root)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ext2.ReadImage(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGuestNullSyscall(b *testing.B) {
	img := buildProfile(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, err := guest.NewKernel(guest.Params{Image: img, RootFS: lmbench.BenchRootFS()})
		if err != nil {
			b.Fatal(err)
		}
		k.Spawn("bench", func(p *guest.Proc) int {
			for j := 0; j < 1000; j++ {
				p.Getppid()
			}
			return 0
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGuestPipePingPong(b *testing.B) {
	img := buildProfile(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, err := guest.NewKernel(guest.Params{Image: img, RootFS: lmbench.BenchRootFS()})
		if err != nil {
			b.Fatal(err)
		}
		k.Spawn("main", func(p *guest.Proc) int {
			r1, w1, _ := p.Pipe()
			r2, w2, _ := p.Pipe()
			p.Fork(func(c *guest.Proc) int {
				buf := make([]byte, 1)
				for {
					n, _ := c.Read(r1, buf)
					if n == 0 {
						return 0
					}
					c.Write(w2, buf)
				}
			})
			buf := make([]byte, 1)
			for j := 0; j < 200; j++ {
				p.Write(w1, buf)
				p.Read(r2, buf)
			}
			p.Poweroff()
			return 0
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConfigSearchRedis(b *testing.B) {
	db := kerneldb.MustLoad()
	a, err := apps.Lookup("redis")
	if err != nil {
		b.Fatal(err)
	}
	spec := core.Spec{
		Manifest: a.Manifest(),
		Image:    a.ContainerImage(),
		Program:  func(p *guest.Proc, probeOnly bool) int { return a.Main(p, probeOnly) },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.DeriveManifest(db, core.SearchInput{Spec: spec, SuccessText: a.SuccessText})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Boots), "boots")
		}
	}
}

func BenchmarkMessaging4Groups(b *testing.B) {
	img := buildProfile(b, false, "UNIX", "FUTEX")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := perfbench.Messaging(img, 4, perfbench.Processes)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(d.Milliseconds(), "sim-ms")
		}
	}
}
